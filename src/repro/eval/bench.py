"""Simulator performance harness: ``repro bench``.

Times the cycle simulator itself (not the modelled hardware) over the
benchmark registry and writes a machine-readable report,
``BENCH_<rev>.json``:

* per benchmark — simulated cycles, best-of-N wall-clock seconds,
  simulated cycles per wall-clock second, and (event scheduler) how many
  cycles were executed vs fast-forwarded;
* totals — aggregate cycles, seconds and cycles/sec.

The report doubles as a regression gate: :func:`compare` checks a fresh
report against a committed baseline and fails on

* any *simulated cycle count* change (the simulator's answer changed —
  a correctness, not performance, regression), or
* a cycles-per-second drop beyond the allowed threshold on the
  aggregate throughput (per-benchmark wall times are too noisy on
  shared CI runners to gate individually).

Wall-clock timing covers ``Machine.run`` only; program build and
compilation are reported separately and not gated.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Dict, List, Optional

#: report format version (bump on incompatible layout changes)
FORMAT = 1


def _build_dram_rowconf(scale: str):
    """Hand-built DHDL stressor: a DRAM-latency-bound transfer loop.

    A sequential outer loop moves one 16-word tile per iteration from
    DRAM to DRAM through a scratchpad.  A padding array places the
    output exactly one row-group (4096 bursts) after the input, so each
    iteration's load and store hit the *same bank in different rows* —
    every burst pays the full precharge+activate row-miss latency.  The
    fabric spends almost all cycles waiting on DRAM, which is exactly
    the shape the event scheduler's fast-forward is built for; this is
    the workload the CI gate watches for event-scheduler regressions.
    """
    import numpy as np
    from repro.dhdl import (Counter, CounterChain, DhdlProgram,
                            OuterController, Scheme, TileLoad, TileStore,
                            validate)
    from repro.patterns import Array
    from repro.patterns import expr as E
    from repro.sim import AgAssignment, FabricConfig, LeafTiming

    iters = {"tiny": 128}.get(scale, 512)
    tile = 16
    n = iters * tile
    data = np.arange(n, dtype=np.float32)
    dhdl = DhdlProgram("dram_rowconf")
    dram_in = dhdl.dram(Array("a", (n,), E.FLOAT32, data=data))
    # 'a' occupies n*4 bytes from its 4 KB-aligned base; pad out to one
    # 256 KB row-group so 'o' shares channel+bank but not row with 'a'
    pad_words = (262144 - 4 * n) // 4
    dhdl.dram(Array("pad", (pad_words,), E.FLOAT32))
    dram_out = dhdl.dram(Array("o", (n,), E.FLOAT32))
    sram = dhdl.sram("t", (tile,), E.FLOAT32, nbuf=2)
    t = E.Idx("t")
    loop = OuterController(
        "loop", Scheme.SEQUENTIAL,
        chain=CounterChain([Counter(0, iters, par=1)], [t]))
    dhdl.root.add(loop)
    loop.add(TileLoad("ld", dram_in, sram, (t * tile,), (tile,)))
    loop.add(TileStore("st", dram_out, sram, (t * tile,), (tile,)))
    validate(dhdl)
    config = FabricConfig()
    for leaf in dhdl.leaves():
        config.leaf_timing[leaf.name] = LeafTiming()
        config.ag_assign[leaf.name] = AgAssignment(ag_ids=(0,))
    config.pcus_used = 1
    config.pmus_used = 1
    config.ags_used = 1

    def check(machine):
        got = machine.result("o")
        if not np.array_equal(got, data):
            raise AssertionError("dram_rowconf: output mismatch")

    return dhdl, config, check


#: synthetic (hand-built DHDL) benchmarks timed alongside the registry
SYNTHETIC = {"dram_rowconf": _build_dram_rowconf}


def git_rev(default: str = "local") -> str:
    """Short git revision of the working tree, or ``default``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return default
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else default


def _time_benchmark(name, dhdl, config, compile_s, check,
                    scheduler: str, repeat: int,
                    compare_dense: bool) -> Dict:
    """Time one prepared (dhdl, config) pair under the scheduler(s)."""
    from repro.sim import Machine

    row: Dict = {"name": name, "compile_s": round(compile_s, 6)}
    for mode in ([scheduler, "dense"] if compare_dense
                 else [scheduler]):
        best_s = None
        for _ in range(max(1, repeat)):
            machine = Machine(dhdl, config, scheduler=mode)
            t0 = time.perf_counter()
            stats = machine.run()
            wall = time.perf_counter() - t0
            if best_s is None or wall < best_s:
                best_s = wall
                best = machine, stats
        machine, stats = best
        if check is not None:
            check(machine)
        entry = {
            "cycles": stats.cycles,
            "wall_s": round(best_s, 6),
            "cycles_per_sec": round(stats.cycles / best_s)
            if best_s > 0 else 0,
        }
        sched = machine.scheduler_stats
        if sched is not None:
            entry["executed_cycles"] = sched.executed_cycles
            entry["fast_forwarded_cycles"] = \
                sched.fast_forwarded_cycles
        if mode == scheduler:
            row.update(entry)
        else:
            row["dense"] = entry
    if compare_dense and scheduler != "dense":
        dense_s = row["dense"]["wall_s"]
        row["speedup_vs_dense"] = round(
            dense_s / row["wall_s"], 3) if row["wall_s"] > 0 else 0.0
    return row


def _bench_worker(payload) -> tuple:
    """Pool worker: prepare (compile or hand-build) and time one
    benchmark; returns ``(row, cache_outcome)``."""
    from repro.eval.driver import CompileSpec, obtain, worker_cache

    kind, name, scale, scheduler, repeat, compare_dense, cache_dir = \
        payload
    if kind == "synthetic":
        dhdl, config, check = SYNTHETIC[name](scale)
        row = _time_benchmark(name, dhdl, config, 0.0, check,
                              scheduler, repeat, compare_dense)
        return row, "off"
    cache = worker_cache(cache_dir)
    t0 = time.perf_counter()
    artifact, outcome = obtain(CompileSpec(name, scale), cache)
    compile_s = time.perf_counter() - t0
    row = _time_benchmark(name, artifact.dhdl, artifact.config,
                          compile_s, None, scheduler, repeat,
                          compare_dense)
    return row, outcome


def run_benchmarks(scale: str = "small", scheduler: str = "event",
                   repeat: int = 3,
                   apps: Optional[List[str]] = None,
                   compare_dense: bool = False,
                   jobs: int = 1, cache=None, tally=None) -> dict:
    """Run the registry under one scheduler and collect timings.

    ``jobs > 1`` times benchmarks in parallel worker processes — useful
    for quick sweeps, but wall-clock numbers then share cores, so the
    CI gate keeps ``jobs=1``.  The report totals split wall time into
    ``compile_s`` (artifact preparation, near-zero on cache hits) and
    ``simulate_s`` (the gated ``Machine.run`` time).
    """
    from repro.apps.registry import ALL_APPS
    from repro.eval.driver import cache_payload, map_tasks

    if apps:
        selected = [name for name in apps if name not in SYNTHETIC]
        synthetic = [name for name in apps if name in SYNTHETIC]
    else:
        selected = [app.name for app in ALL_APPS]
        synthetic = list(SYNTHETIC)
    cache_dir = cache_payload(cache)
    payloads = [("app", name, scale, scheduler, repeat, compare_dense,
                 cache_dir) for name in selected]
    payloads += [("synthetic", name, scale, scheduler, repeat,
                  compare_dense, None) for name in synthetic]
    rows = []
    for row, outcome in map_tasks(_bench_worker, payloads, jobs=jobs):
        if tally is not None and row["name"] not in SYNTHETIC:
            tally.record(outcome)
        rows.append(row)
    total_cycles = sum(r["cycles"] for r in rows)
    total_s = sum(r["wall_s"] for r in rows)
    total_compile_s = sum(r["compile_s"] for r in rows)
    return {
        "format": FORMAT,
        "rev": git_rev(),
        "scale": scale,
        "scheduler": scheduler,
        "repeat": repeat,
        "jobs": jobs,
        "benchmarks": rows,
        "totals": {
            "cycles": total_cycles,
            "wall_s": round(total_s, 6),
            "cycles_per_sec": round(total_cycles / total_s)
            if total_s > 0 else 0,
            "compile_s": round(total_compile_s, 6),
            "simulate_s": round(total_s, 6),
        },
    }


def write_report(report: dict, out_dir: str = ".") -> str:
    """Write ``BENCH_<rev>.json``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{report['rev']}.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def compare(current: dict, baseline: dict,
            threshold: float = 0.25) -> List[str]:
    """Regression check; returns a list of failure messages (empty =
    pass)."""
    failures: List[str] = []
    base_rows = {r["name"]: r for r in baseline.get("benchmarks", ())}
    for row in current["benchmarks"]:
        base = base_rows.get(row["name"])
        if base is None:
            continue  # new benchmark: nothing to regress against
        if row["cycles"] != base["cycles"]:
            failures.append(
                f"{row['name']}: simulated cycles changed "
                f"{base['cycles']} -> {row['cycles']} (the simulator's "
                f"answer changed; refresh the baseline only if this is "
                f"an intended model change)")
    cur_rate = current["totals"]["cycles_per_sec"]
    base_rate = baseline["totals"]["cycles_per_sec"]
    if base_rate > 0 and cur_rate < base_rate * (1.0 - threshold):
        failures.append(
            f"throughput regression: {cur_rate} cycles/sec vs baseline "
            f"{base_rate} (allowed: >= {1.0 - threshold:.0%} of "
            f"baseline)")
    return failures


# ---------------------------------------------------------------------------
# Batched-simulation benchmark (the CI batch-gate workload)
# ---------------------------------------------------------------------------

#: batch report format version
BATCH_FORMAT = 1


def batch_param_grid(stages=range(4, 17), banks=(4, 8, 16),
                     output_hops=(1, 3)) -> List[dict]:
    """The Figure-7-shaped timing grid the batch gate sweeps.

    The stages axis is exactly Figure 7a's range; banks and output hops
    add the PMU/network axes, giving 13*3*2 = 78 instances of one
    compiled design — a realistic DSE sweep shape.
    """
    return [{"stages": s, "banks": b, "output_hops": h}
            for s in stages for b in banks for h in output_hops]


def run_batch_benchmark(app: str = "gemm", scale: str = "small",
                        scheduler: str = "event",
                        params: Optional[List[dict]] = None,
                        sample: int = 6, cache=None) -> dict:
    """Time ``Machine.run_batch`` against a sequential estimate.

    The batch side runs the full grid and is timed exactly.  The
    sequential side would take minutes at gate-relevant sizes, so it is
    *estimated*: ``sample`` instances spread across the grid are run
    solo (through the same :func:`repro.sim.batch.instantiate` the
    batch uses) and their mean wall time is extrapolated to N.  Every
    sampled instance is also compared bit-for-bit — SimStats and the
    full DRAM image — against its batch twin, so the benchmark doubles
    as an end-to-end equivalence check.
    """
    import numpy as np

    from repro.compiler.artifact import compile_app_cached
    from repro.sim.batch import instantiate, run_batch

    t0 = time.perf_counter()
    artifact, _ = compile_app_cached(app, scale, cache=cache)
    compile_s = time.perf_counter() - t0
    params = params if params is not None else batch_param_grid()
    n = len(params)
    sample = max(1, min(sample, n))
    picks = sorted(set(np.linspace(0, n - 1, sample).astype(int)
                       .tolist()))

    solo = {}
    seq_s = 0.0
    for i in picks:
        machine = instantiate(artifact, params[i], scheduler=scheduler)
        t0 = time.perf_counter()
        machine.run()
        seq_s += time.perf_counter() - t0
        solo[i] = machine
    per_run_s = seq_s / len(picks)
    est_sequential_s = per_run_s * n

    t0 = time.perf_counter()
    batch = run_batch(artifact, params, scheduler=scheduler)
    batch_s = time.perf_counter() - t0

    mismatches = []
    for i, machine in solo.items():
        twin = batch[i]
        if twin.error is not None:
            mismatches.append(f"instance {i}: batch errored: "
                              f"{twin.error}")
            continue
        if not machine.stats.same_as(twin.stats):
            mismatches.append(f"instance {i}: SimStats diverge")
        for name, buf in machine.image.buffers.items():
            if not np.array_equal(buf, twin.machine.image.buffers[name]):
                mismatches.append(f"instance {i}: DRAM image "
                                  f"{name!r} diverges")
    errors = [f"instance {r.index}: {r.error}"
              for r in batch if r.error is not None]
    speedup = est_sequential_s / batch_s if batch_s > 0 else 0.0
    return {
        "format": BATCH_FORMAT,
        "rev": git_rev(),
        "app": app,
        "scale": scale,
        "scheduler": scheduler,
        "instances": n,
        "cohorts": batch.cohorts,
        "replayed": batch.replayed,
        "sampled": len(picks),
        "compile_s": round(compile_s, 6),
        "per_run_s": round(per_run_s, 6),
        "est_sequential_s": round(est_sequential_s, 6),
        "batch_s": round(batch_s, 6),
        "speedup": round(speedup, 3),
        "verified": len(picks) - len(mismatches),
        "mismatches": mismatches,
        "errors": errors,
    }


def compare_batch(report: dict, baseline: dict) -> List[str]:
    """Batch-gate check; returns failure messages (empty = pass).

    The committed baseline pins the minimum acceptable
    batch-vs-sequential speedup; any equivalence mismatch or instance
    error found during the benchmark fails the gate outright.
    """
    failures = list(report.get("mismatches", ()))
    failures += report.get("errors", ())
    min_speedup = float(baseline.get("min_speedup", 0.0))
    if report["speedup"] < min_speedup:
        failures.append(
            f"batch speedup regression: {report['speedup']:.1f}x vs "
            f"committed floor {min_speedup:.1f}x "
            f"({report['instances']} instances, batch "
            f"{report['batch_s']:.2f}s, est sequential "
            f"{report['est_sequential_s']:.2f}s)")
    want_n = baseline.get("instances")
    if want_n is not None and report["instances"] != want_n:
        failures.append(
            f"batch workload changed: {report['instances']} instances "
            f"vs baseline {want_n} (update benchmarks/"
            f"batch_baseline.json if intended)")
    return failures


def render_batch(report: dict) -> str:
    """Human-readable batch benchmark summary."""
    return "\n".join([
        f"batched simulation — {report['app']} ({report['scale']}), "
        f"{report['instances']} instances, scheduler="
        f"{report['scheduler']}, rev={report['rev']}",
        f"  cohorts {report['cohorts']}, replayed {report['replayed']}, "
        f"compile {report['compile_s'] * 1e3:.0f} ms",
        f"  sequential estimate: {report['per_run_s'] * 1e3:.0f} ms/run "
        f"x {report['instances']} = {report['est_sequential_s']:.2f} s "
        f"(measured on {report['sampled']} sampled instances)",
        f"  batch: {report['batch_s']:.2f} s  ->  speedup "
        f"{report['speedup']:.1f}x",
        f"  equivalence: {report['verified']}/{report['sampled']} "
        f"sampled instances bit-identical"
        + (f"; MISMATCHES: {report['mismatches']}"
           if report["mismatches"] else ""),
    ])


def cmd_bench_batch(args) -> int:
    """The ``repro bench --batch`` path (wired from :func:`cmd_bench`)."""
    import sys

    from repro.bitstream.cache import CompileCache

    app = (args.apps[0] if args.apps else "gemm")
    scale = "tiny" if args.quick else args.scale
    cache = CompileCache(args.cache_dir) if args.cache_dir else None
    report = run_batch_benchmark(app=app, scale=scale,
                                 scheduler=args.scheduler, cache=cache)
    print(render_batch(report))
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, f"BATCH_{report['rev']}.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {path}")
    status = 0
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = compare_batch(report, baseline)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"batch gate passed (floor "
              f"{baseline.get('min_speedup', 0):.1f}x)")
    elif report["mismatches"] or report["errors"]:
        for failure in report["mismatches"] + report["errors"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        status = 1
    return status


def render(report: dict) -> str:
    """Human-readable table for the terminal."""
    lines = [f"simulator benchmark — scale={report['scale']} "
             f"scheduler={report['scheduler']} rev={report['rev']}",
             f"{'benchmark':14s} {'cycles':>9s} {'wall ms':>9s} "
             f"{'Mcyc/s':>8s} {'exec':>9s} {'fastfwd':>9s}"
             + ("  speedup" if any('speedup_vs_dense' in r for r in
                                   report['benchmarks']) else "")]
    for row in report["benchmarks"]:
        line = (f"{row['name']:14s} {row['cycles']:9d} "
                f"{row['wall_s'] * 1e3:9.2f} "
                f"{row['cycles_per_sec'] / 1e6:8.2f} "
                f"{row.get('executed_cycles', row['cycles']):9d} "
                f"{row.get('fast_forwarded_cycles', 0):9d}")
        if "speedup_vs_dense" in row:
            line += f"  {row['speedup_vs_dense']:6.2f}x"
        lines.append(line)
    totals = report["totals"]
    lines.append(f"{'total':14s} {totals['cycles']:9d} "
                 f"{totals['wall_s'] * 1e3:9.2f} "
                 f"{totals['cycles_per_sec'] / 1e6:8.2f}")
    if "compile_s" in totals:
        lines.append(f"wall split: compile "
                     f"{totals['compile_s'] * 1e3:.2f} ms, simulate "
                     f"{totals['simulate_s'] * 1e3:.2f} ms")
    return "\n".join(lines)


def cmd_bench(args) -> int:
    """Entry point for ``repro bench`` (wired from the CLI)."""
    import sys

    from repro.bitstream.cache import CompileCache
    from repro.eval.driver import CacheTally

    if getattr(args, "multi", False):
        from repro.eval.multi import cmd_bench_multi
        return cmd_bench_multi(args)
    if getattr(args, "batch", False):
        return cmd_bench_batch(args)
    scale = "tiny" if args.quick else args.scale
    repeat = 1 if args.quick else args.repeat
    # caching is opt-in for bench: compile_s is part of the report, and
    # serving artifacts from disk would make it meaningless by default
    cache = CompileCache(args.cache_dir) if args.cache_dir else None
    tally = CacheTally()
    report = run_benchmarks(scale=scale, scheduler=args.scheduler,
                            repeat=repeat, apps=args.apps or None,
                            compare_dense=args.compare_dense,
                            jobs=args.jobs, cache=cache, tally=tally)
    print(render(report))
    if tally.lookups:
        print(tally.summary())
    path = write_report(report, args.out)
    print(f"\nwrote {path}")
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = compare(report, baseline, threshold=args.threshold)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"baseline check passed "
              f"(threshold {args.threshold:.0%}, baseline rev "
              f"{baseline.get('rev', '?')})")
    return 0
