"""Multi-tenancy benchmark: ``repro bench --multi``.

Quantifies what co-residency buys and costs, entirely in *simulated
cycles* (deterministic, so the CI gate is noise-free):

* each app runs solo (classic ``Machine.run``) for its baseline cycle
  count, and is also run as a lone tenant on a Fabric to assert the
  solo-equivalence invariant (bit-identical ``SimStats``);
* the whole set then runs co-resident on one shared fabric;
* ``aggregate_speedup`` = sum of solo cycles / fabric makespan — the
  throughput gain of sharing the chip instead of time-multiplexing it;
* per-tenant slowdowns and per-channel utilization expose the DRAM
  interference the sharing introduces.

``compare_multi`` gates a fresh report against the committed
``benchmarks/multi_baseline.json``: exact cycle counts (the model's
answer must not drift silently), the aggregate-throughput floor, and
the solo-equivalence invariant.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Sequence

from repro.eval.bench import git_rev

#: report format version
MULTI_FORMAT = 1

#: QoS report format version
QOS_FORMAT = 1

#: default co-resident pair: compute-light, DRAM-hungry streaming apps
#: whose footprints trivially fit side by side at every scale
DEFAULT_PAIR = ("gemm", "tpchq6")

#: QoS benchmark workload: one latency-sensitive tenant leading, then
#: memory-bound riders that contend for the shared DRAM channels
QOS_APPS = ("gemm", "tpchq6", "tpchq6", "tpchq6")
QOS_PRIORITIES = (8, 1, 1, 1)


def run_multi_benchmark(apps: Sequence[str] = DEFAULT_PAIR,
                        scale: str = "tiny") -> dict:
    """Solo vs co-resident comparison for one set of apps."""
    from repro.compiler.artifact import compile_to_bitstream
    from repro.sim.fabric import Fabric
    from repro.sim.machine import Machine
    from repro.tenancy import co_run

    solo_stats = {}
    equivalence: List[str] = []
    for i, app in enumerate(apps):
        if app in solo_stats:
            continue
        artifact = compile_to_bitstream(app, scale)
        machine = Machine(artifact.dhdl, artifact.config)
        solo_stats[app] = machine.run()
        lone = Fabric()
        tenant = lone.add_tenant(artifact.dhdl, artifact.config,
                                 name=app)
        lone.run()
        if not tenant.machine.stats.same_as(solo_stats[app]):
            equivalence.append(
                f"{app}: lone-tenant fabric stats diverge from solo "
                f"Machine.run")

    co = co_run(list(apps), scale=scale, validate=True)
    sequential_cycles = sum(solo_stats[t.app].cycles
                            for t in co.tenants)
    fabric_cycles = co.fabric_cycles
    rows = []
    for tenant in co.tenants:
        solo = solo_stats[tenant.app]
        rows.append({
            "app": tenant.app,
            "name": tenant.name,
            "region": list(tenant.region) if tenant.region else None,
            "solo_cycles": solo.cycles,
            "co_cycles": tenant.stats.cycles,
            "slowdown": round(tenant.stats.cycles / solo.cycles, 4)
            if solo.cycles else 0.0,
            "dram_stall_cycles": tenant.stats.dram_stall_cycles,
            "solo_dram_stall_cycles": solo.dram_stall_cycles,
            "dram_bytes": tenant.stats.dram.get("bytes", 0),
            "channel_util": tenant.channel_util,
            "validated": tenant.validated,
        })
    return {
        "format": MULTI_FORMAT,
        "rev": git_rev(),
        "scale": scale,
        "apps": list(apps),
        "tenants": rows,
        "sequential_cycles": sequential_cycles,
        "fabric_cycles": fabric_cycles,
        "aggregate_speedup": round(sequential_cycles / fabric_cycles, 4)
        if fabric_cycles else 0.0,
        "channel_util": co.channel_util,
        "pack_report": co.pack_report,
        "equivalence_failures": equivalence,
    }


def compare_multi(report: dict, baseline: dict) -> List[str]:
    """Multi-gate check; returns failure messages (empty = pass)."""
    failures = list(report.get("equivalence_failures", ()))
    want_apps = baseline.get("apps")
    if want_apps is not None and report["apps"] != want_apps:
        failures.append(
            f"multi workload changed: {report['apps']} vs baseline "
            f"{want_apps} (update benchmarks/multi_baseline.json if "
            f"intended)")
        return failures
    for key in ("sequential_cycles", "fabric_cycles"):
        want = baseline.get(key)
        if want is not None and report[key] != want:
            failures.append(
                f"{key} changed: {want} -> {report[key]} (the model's "
                f"answer changed; refresh the baseline only if this is "
                f"an intended change)")
    floor = float(baseline.get("min_aggregate_speedup", 0.0))
    if report["aggregate_speedup"] < floor:
        failures.append(
            f"aggregate-throughput regression: co-resident speedup "
            f"{report['aggregate_speedup']:.3f}x vs committed floor "
            f"{floor:.3f}x (sequential {report['sequential_cycles']} "
            f"cycles, fabric {report['fabric_cycles']} cycles)")
    for row in report["tenants"]:
        if not row["validated"]:
            failures.append(f"{row['name']}: outputs not validated")
    return failures


def render_multi(report: dict) -> str:
    """Human-readable multi benchmark summary."""
    lines = [
        f"multi-tenant fabric — {'+'.join(report['apps'])} "
        f"({report['scale']}), rev={report['rev']}",
        f"  {'tenant':14s} {'region':>10s} {'solo':>8s} {'co':>8s} "
        f"{'slowdown':>9s} {'dram stalls':>12s}",
    ]
    for row in report["tenants"]:
        if row["region"]:
            col0, row0, cols, rows_ = row["region"]
            region = f"{cols}x{rows_}@({col0},{row0})"
        else:
            region = "full"
        lines.append(
            f"  {row['name']:14s} {region:>10s} {row['solo_cycles']:8d} "
            f"{row['co_cycles']:8d} {row['slowdown']:8.3f}x "
            f"{row['solo_dram_stall_cycles']:5d} -> "
            f"{row['dram_stall_cycles']:d}")
    lines.append(
        f"  sequential {report['sequential_cycles']} cycles vs "
        f"co-resident {report['fabric_cycles']} cycles  ->  aggregate "
        f"speedup {report['aggregate_speedup']:.3f}x")
    util = ", ".join(f"{ch}={v['util'] * 100:.1f}%"
                     for ch, v in sorted(report["channel_util"].items()))
    lines.append(f"  shared channel utilization: {util}")
    if report["equivalence_failures"]:
        lines.append(
            f"  EQUIVALENCE FAILURES: {report['equivalence_failures']}")
    else:
        lines.append("  solo-equivalence: every app bit-identical as a "
                     "lone tenant")
    return "\n".join(lines)


def run_qos_benchmark(apps: Sequence[str] = QOS_APPS,
                      priorities: Sequence[int] = QOS_PRIORITIES,
                      scale: str = "tiny") -> dict:
    """Weighted vs unweighted DRAM arbitration for one QoS workload.

    Runs the same co-resident set twice — plain FR-FCFS, then with the
    given per-tenant weights — and reports the high-priority tenant's
    completion latency under both.  Both runs are deterministic, so the
    gate pins exact cycle counts; the point of the benchmark is that
    the weighted run finishes the high-priority tenant measurably
    earlier while total makespan stays sane.
    """
    from repro.tenancy import co_run
    from repro.tenancy.profile import profile_app

    if len(priorities) != len(apps):
        raise ValueError(f"{len(priorities)} priorities for "
                         f"{len(apps)} apps")
    base = co_run(list(apps), scale=scale, validate=True)
    weighted = co_run(list(apps), scale=scale, validate=True,
                      priorities=list(priorities))
    hi = max(range(len(priorities)), key=lambda k: priorities[k])
    hi_base, hi_weighted = base.tenants[hi], weighted.tenants[hi]
    speedup = (hi_base.finish_cycle / hi_weighted.finish_cycle
               if hi_weighted.finish_cycle else 0.0)
    return {
        "format": QOS_FORMAT,
        "rev": git_rev(),
        "scale": scale,
        "apps": list(apps),
        "priorities": list(priorities),
        "hi_tenant": hi_weighted.name,
        "unweighted_hi_cycles": hi_base.finish_cycle,
        "weighted_hi_cycles": hi_weighted.finish_cycle,
        "hi_speedup": round(speedup, 4),
        "unweighted_fabric_cycles": base.fabric_cycles,
        "weighted_fabric_cycles": weighted.fabric_cycles,
        "bandwidth_classes": {
            app: profile_app(app, scale).klass
            for app in dict.fromkeys(apps)},
        "qos": weighted.qos,
        "validated": all(t.validated for t in base.tenants)
        and all(t.validated for t in weighted.tenants),
    }


def compare_qos(report: dict, baseline: dict) -> List[str]:
    """QoS-gate check; returns failure messages (empty = pass)."""
    failures: List[str] = []
    for key in ("apps", "priorities"):
        want = baseline.get(key)
        if want is not None and report[key] != want:
            failures.append(
                f"qos workload changed: {key} {report[key]} vs "
                f"baseline {want} (update "
                f"benchmarks/qos_baseline.json if intended)")
    if failures:
        return failures
    if not report["validated"]:
        failures.append("qos benchmark tenants were not validated")
    for key in ("unweighted_hi_cycles", "weighted_hi_cycles",
                "unweighted_fabric_cycles", "weighted_fabric_cycles"):
        want = baseline.get(key)
        if want is not None and report[key] != want:
            failures.append(
                f"{key} changed: {want} -> {report[key]} (the "
                f"model's answer changed; refresh the baseline only "
                f"if this is an intended change)")
    if report["weighted_hi_cycles"] >= report["unweighted_hi_cycles"]:
        failures.append(
            f"priority buys nothing: high-priority tenant finished at "
            f"cycle {report['weighted_hi_cycles']} weighted vs "
            f"{report['unweighted_hi_cycles']} unweighted")
    floor = float(baseline.get("min_hi_speedup", 0.0))
    if report["hi_speedup"] < floor:
        failures.append(
            f"qos regression: high-priority completion speedup "
            f"{report['hi_speedup']:.3f}x vs committed floor "
            f"{floor:.3f}x")
    return failures


def render_qos(report: dict) -> str:
    """Human-readable QoS benchmark summary."""
    pairs = ", ".join(f"{a}:{p}" for a, p in zip(report["apps"],
                                                 report["priorities"]))
    classes = ", ".join(f"{a}={c}" for a, c
                        in sorted(report["bandwidth_classes"].items()))
    lines = [
        f"qos arbitration — {pairs} ({report['scale']}), "
        f"rev={report['rev']}",
        f"  bandwidth classes: {classes}",
        f"  high-priority tenant {report['hi_tenant']}: finish cycle "
        f"{report['unweighted_hi_cycles']} unweighted -> "
        f"{report['weighted_hi_cycles']} weighted "
        f"({report['hi_speedup']:.3f}x faster completion)",
        f"  fabric makespan: {report['unweighted_fabric_cycles']} "
        f"unweighted -> {report['weighted_fabric_cycles']} weighted",
    ]
    qos = report.get("qos") or {}
    for name, entry in sorted((qos.get("tenants") or {}).items()):
        lines.append(
            f"    {name}: weight {entry['priority']}, won "
            f"{entry['arb_won']} / deferred {entry['arb_deferred']} "
            f"contended grants")
    return "\n".join(lines)


def cmd_bench_multi(args) -> int:
    """The ``repro bench --multi`` path (wired from ``cmd_bench``)."""
    import sys

    apps: Optional[List[str]] = args.apps or None
    scale = "tiny" if args.quick else args.scale
    report = run_multi_benchmark(apps=apps or list(DEFAULT_PAIR),
                                 scale=scale)
    print(render_multi(report))
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, f"MULTI_{report['rev']}.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {path}")
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = compare_multi(report, baseline)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"multi gate passed (floor "
              f"{baseline.get('min_aggregate_speedup', 0):.3f}x)")
    elif report["equivalence_failures"]:
        for failure in report["equivalence_failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if getattr(args, "qos_baseline", None):
        with open(args.qos_baseline) as fh:
            qos_baseline = json.load(fh)
        qos_report = run_qos_benchmark(
            apps=qos_baseline.get("apps", QOS_APPS),
            priorities=qos_baseline.get("priorities", QOS_PRIORITIES),
            scale=scale)
        print()
        print(render_qos(qos_report))
        qos_path = os.path.join(args.out,
                                f"QOS_{qos_report['rev']}.json")
        with open(qos_path, "w") as fh:
            json.dump(qos_report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {qos_path}")
        qos_failures = compare_qos(qos_report, qos_baseline)
        if qos_failures:
            for failure in qos_failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"qos gate passed (floor "
              f"{qos_baseline.get('min_hi_speedup', 0):.3f}x)")
    return 0
