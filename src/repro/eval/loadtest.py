"""``repro loadtest`` — concurrent replay against a running server.

The harness builds a deterministic request mix from the fuzz generator
(``--unique`` distinct specs, padded to ``--requests`` with duplicates,
order shuffled by ``--seed``), fans it out over ``--concurrency``
persistent connections, and reports what a serving deployment cares
about: p50/p99/mean latency (exact, from raw client-side samples — the
server's ``/statsz`` histogram is bucketed), throughput, error counts,
and — from the ``/statsz`` delta across the run — how much work
coalescing and the compile/result caches actually saved.

Backpressure is part of the protocol, not an error: a 429 is retried
after the server's ``Retry-After`` hint and counted separately.  With
``--spawn`` the harness forks its own ``repro serve`` subprocess on a
free port, waits for ``/healthz``, replays, and tears it down — the CI
``serve-smoke`` job and the committed ``benchmarks/serve_baseline.json``
both use that mode.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.eval.report import format_table
from repro.fuzz.generator import gen_spec
from repro.serve.client import ServeClient, sync_request, wait_healthy

#: a 429'd request is retried at most this many times before counting
#: as an error
MAX_RETRIES = 50


# ---------------------------------------------------------------------------
# Request mix
# ---------------------------------------------------------------------------


#: light registry apps rotated through the mixed-tenant slots
MULTI_APPS = ("gemm", "tpchq6", "innerproduct", "outerproduct")


def make_requests(total: int, unique: int, seed: int = 0,
                  trace_every: int = 0,
                  multi_every: int = 0,
                  priority_every: int = 0) -> List[dict]:
    """A deterministic request mix: ``unique`` distinct specs, padded
    to ``total`` with duplicates, deterministically shuffled.

    ``multi_every`` mixes in multi-tenant work: every N-th slot becomes
    a direct ``POST /multi`` pair, and the slot halfway between becomes
    an app-simulate job opted into service-side co-scheduling — so a
    concurrent replay exercises both the explicit and the batched
    co-residency paths.  ``priority_every`` makes every N-th of those
    multi-tenant bodies claim an elevated QoS weight (the /multi pair
    boosts its first tenant; the coschedule job boosts itself), so a
    mixed replay drives the weighted DRAM arbitration too.  Bodies
    carry a ``_path`` hint the replay worker pops before sending.
    """
    unique = max(1, min(unique, total))
    specs = [gen_spec(seed * 100_000 + k) for k in range(unique)]
    rng = np.random.default_rng(seed)
    bodies = []
    multis = 0
    for k in range(total):
        if multi_every and k % multi_every == 0:
            pair = [MULTI_APPS[(k // multi_every) % len(MULTI_APPS)],
                    MULTI_APPS[(k // multi_every + 1) % len(MULTI_APPS)]]
            body = {"_path": "/multi", "apps": pair, "scale": "tiny"}
            multis += 1
            if priority_every and multis % priority_every == 0:
                body["priorities"] = [4, 1]
            bodies.append(body)
            continue
        if multi_every and k % multi_every == max(1, multi_every // 2):
            app = MULTI_APPS[(k // multi_every) % len(MULTI_APPS)]
            body = {"_path": "/simulate", "app": app,
                    "scale": "tiny",
                    "params": {"coschedule": True}}
            multis += 1
            if priority_every and multis % priority_every == 0:
                body["params"]["priority"] = 4
            bodies.append(body)
            continue
        spec = specs[k] if k < unique else \
            specs[int(rng.integers(unique))]
        body: Dict = {"spec": spec}
        if trace_every and k % trace_every == 0:
            body["params"] = {"trace": True}
        bodies.append(body)
    order = rng.permutation(total)
    return [bodies[int(k)] for k in order]


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


async def _worker(client: ServeClient, queue: "asyncio.Queue",
                  records: List[dict], chaos: dict) -> None:
    while True:
        item = await queue.get()
        if item is None:
            queue.task_done()
            break
        body = dict(item)
        path = body.pop("_path", "/simulate")
        started = time.perf_counter()
        status, result, retries, shed_retries = None, None, 0, 0
        try:
            while True:
                status, headers, result = await client.request(
                    "POST", path, body)
                # 429 = backpressure, 503+retry_after_s = open circuit
                # breaker: both are protocol, both are retried
                shed = (status == 503 and isinstance(result, dict)
                        and "retry_after_s" in result)
                if (status != 429 and not shed) \
                        or retries + shed_retries >= MAX_RETRIES:
                    break
                hint = (float(result.get("retry_after_s", 1))
                        if isinstance(result, dict) else 1.0)
                if shed:
                    shed_retries += 1
                    delay = min(5.0, hint + 0.05)
                else:
                    retries += 1
                    delay = min(5.0, hint * 0.1)
                await asyncio.sleep(delay)
        except (OSError, asyncio.IncompleteReadError) as err:
            status, result = -1, {"error": str(err)}
        records.append({
            "ms": (time.perf_counter() - started) * 1e3,
            "status": status,
            "retries": retries,
            "shed_retries": shed_retries,
            "path": path,
            "served": (result.get("served", "fresh")
                       if isinstance(result, dict) else "error"),
        })
        queue.task_done()
        if chaos.get("every"):
            chaos["sent"] += 1
            if chaos["sent"] % chaos["every"] == 0:
                try:
                    await client.request("POST", "/chaos/kill", {})
                    chaos["kills"] += 1
                except (OSError, asyncio.IncompleteReadError):
                    pass


async def _replay(host: str, port: int, bodies: List[dict],
                  concurrency: int, kill_every: int = 0
                  ) -> Tuple[List[dict], dict]:
    queue: "asyncio.Queue" = asyncio.Queue()
    for body in bodies:
        queue.put_nowait(body)
    clients = [ServeClient(host, port) for _ in range(concurrency)]
    for _ in clients:
        queue.put_nowait(None)
    records: List[dict] = []
    chaos = {"every": int(kill_every), "sent": 0, "kills": 0}
    tasks = [asyncio.ensure_future(_worker(c, queue, records, chaos))
             for c in clients]
    await asyncio.gather(*tasks)
    for client in clients:
        await client.close()
    return records, chaos


def _percentile(samples: List[float], p: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = (len(ordered) - 1) * p / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def run_loadtest(host: str, port: int, requests: int = 200,
                 concurrency: int = 16, unique: int = 0, seed: int = 0,
                 trace_every: int = 0, multi_every: int = 0,
                 priority_every: int = 0,
                 kill_every: int = 0) -> dict:
    """Replay a request mix and assemble the report dict."""
    unique = unique or max(1, requests // 5)
    bodies = make_requests(requests, unique, seed,
                           trace_every=trace_every,
                           multi_every=multi_every,
                           priority_every=priority_every)
    _, before = sync_request(host, port, "GET", "/statsz")
    started = time.perf_counter()
    records, chaos = asyncio.run(
        _replay(host, port, bodies, concurrency,
                kill_every=kill_every))
    wall_s = time.perf_counter() - started
    _, after = sync_request(host, port, "GET", "/statsz")
    oks = [r for r in records if r["status"] == 200]
    latencies = [r["ms"] for r in oks]

    def delta(*path) -> int:
        b, a = before, after
        for name in path:
            b = b.get(name, 0) if isinstance(b, dict) else 0
            a = a.get(name, 0) if isinstance(a, dict) else 0
        return (a or 0) - (b or 0)

    multi_ok = [r for r in oks if r["path"] == "/multi"]
    cosched_ok = [r for r in oks if r["served"] == "coscheduled"]
    return {
        "requests": requests,
        "unique_specs": unique,
        "concurrency": concurrency,
        "seed": seed,
        "multi_every": multi_every,
        "priority_every": priority_every,
        "multi_ok": len(multi_ok),
        "coscheduled_ok": len(cosched_ok),
        "ok": len(oks),
        "errors": len(records) - len(oks),
        "backpressure_retries": sum(r["retries"] for r in records),
        "kill_every": kill_every,
        "kills": chaos["kills"],
        "breaker_retries": sum(r["shed_retries"] for r in records),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(len(records) / wall_s, 2),
        "p50_ms": round(_percentile(latencies, 50), 3),
        "p90_ms": round(_percentile(latencies, 90), 3),
        "p99_ms": round(_percentile(latencies, 99), 3),
        "mean_ms": round(sum(latencies) / len(latencies), 3)
        if latencies else 0.0,
        "server": {
            "coalesced": delta("requests", "coalesced"),
            "result_cache_hits": delta("requests",
                                       "result_cache_hits"),
            "compiles": delta("work", "compiles"),
            "sims": delta("work", "sims"),
            "cache_hits": delta("compile_cache", "hits"),
            "cache_misses": delta("compile_cache", "misses"),
            "rejected": delta("requests", "rejected"),
            "timeouts": delta("requests", "timeouts"),
            "multis": delta("work", "multis"),
            "coschedule_batches": delta("work", "coschedule_batches"),
            "coschedule_jobs": delta("work", "coschedule_jobs"),
            "priority_jobs": delta("qos", "priority_jobs"),
            "cosched_reordered": delta("qos", "cosched_reordered"),
            "worker_crashes": delta("faults", "worker_crashes"),
            "worker_retries": delta("faults", "retries"),
            "respawns": delta("faults", "respawns"),
            "breaker_shed": delta("faults", "breaker_shed"),
        },
    }


def render(report: dict) -> str:
    """Human-facing summary table."""
    server = report["server"]
    rows = [
        ["requests", report["requests"],
         f"{report['unique_specs']} unique specs, "
         f"concurrency {report['concurrency']}"],
        ["ok / errors", f"{report['ok']} / {report['errors']}",
         f"{report['backpressure_retries']} backpressure retries"],
        ["throughput", f"{report['throughput_rps']} req/s",
         f"{report['wall_s']} s wall"],
        ["latency p50", f"{report['p50_ms']} ms",
         f"mean {report['mean_ms']} ms"],
        ["latency p99", f"{report['p99_ms']} ms",
         f"p90 {report['p90_ms']} ms"],
        ["coalesced", server["coalesced"],
         f"result-cache hits {server['result_cache_hits']}"],
        ["compiles", server["compiles"],
         f"cache {server['cache_hits']} hits / "
         f"{server['cache_misses']} misses"],
        ["sims", server["sims"],
         f"rejected {server['rejected']}, "
         f"timeouts {server['timeouts']}"],
    ]
    if report.get("multi_every"):
        rows.append(
            ["multi-tenant", f"{report['multi_ok']} multi ok",
             f"{report['coscheduled_ok']} coscheduled ok, "
             f"{server['coschedule_batches']} batches / "
             f"{server['coschedule_jobs']} batched jobs, "
             f"{server['multis']} fabric runs"])
    if report.get("priority_every"):
        rows.append(
            ["qos", f"{server['priority_jobs']} priority jobs",
             f"{server['cosched_reordered']} batches re-seated "
             f"off FIFO order"])
    if report.get("kill_every"):
        rows.append(
            ["chaos", f"{report['kills']} workers killed",
             f"{server['worker_crashes']} crashes seen, "
             f"{server['worker_retries']} retried, "
             f"{server['respawns']} respawns, "
             f"{server['breaker_shed']} breaker-shed "
             f"({report['breaker_retries']} client retries)"])
    return format_table(["metric", "value", "detail"], rows,
                        title="repro loadtest")


# ---------------------------------------------------------------------------
# Baseline comparison (mirrors repro bench --baseline)
# ---------------------------------------------------------------------------


def compare(current: dict, baseline: dict,
            threshold: float = 0.5) -> List[str]:
    """Serving-latency regressions vs a committed baseline.

    Correctness counters must not regress at all; latency/throughput
    may drift by ``threshold`` (wall-clock noise across machines is
    large, hence the permissive default).
    """
    problems = []
    if current["errors"]:
        problems.append(f"{current['errors']} failed requests "
                        f"(baseline expects 0)")
    for key, worse_is_higher in (("p50_ms", True), ("p99_ms", True),
                                 ("throughput_rps", False)):
        was, now = baseline.get(key), current.get(key)
        if not was or not now:
            continue
        ratio = (now / was) if worse_is_higher else (was / now)
        if ratio > 1 + threshold:
            problems.append(
                f"{key}: {now} vs baseline {was} "
                f"({100 * (ratio - 1):.0f}% worse, "
                f"allowed {100 * threshold:.0f}%)")
    base_server = baseline.get("server", {})
    if base_server.get("coalesced", 0) + base_server.get(
            "result_cache_hits", 0) > 0:
        saved = (current["server"]["coalesced"]
                 + current["server"]["result_cache_hits"])
        if saved == 0:
            problems.append(
                "no request ever coalesced or hit the result cache "
                "(baseline run saved work; dedup machinery regressed?)")
    return problems


# ---------------------------------------------------------------------------
# Server spawning (CI / baseline mode)
# ---------------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@contextmanager
def spawned_server(jobs: int, queue_depth: int,
                   cache_dir: Optional[str] = None,
                   data_dir: Optional[str] = None,
                   chaos: bool = False):
    """Run ``repro serve`` as a subprocess; yields ``(host, port)``."""
    host, port = "127.0.0.1", _free_port()
    hold = tempfile.TemporaryDirectory(prefix="repro-loadtest-")
    cache_dir = cache_dir or os.path.join(hold.name, "cache")
    data_dir = data_dir or os.path.join(hold.name, "data")
    argv = [sys.executable, "-m", "repro", "serve", "--host", host,
            "--port", str(port), "--jobs", str(jobs),
            "--queue-depth", str(queue_depth),
            "--cache-dir", cache_dir, "--data-dir", data_dir]
    if chaos:
        argv.append("--chaos")
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(argv, env=env)
    try:
        if not wait_healthy(host, port, timeout_s=60.0):
            raise RuntimeError(
                f"spawned server on port {port} never became healthy")
        yield host, port
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
        hold.cleanup()


# ---------------------------------------------------------------------------
# CLI entry point
# ---------------------------------------------------------------------------


def cmd_loadtest(args) -> int:
    """``repro loadtest`` behind the CLI."""
    if args.spawn:
        with spawned_server(args.jobs, args.queue_depth,
                            cache_dir=args.cache_dir,
                            data_dir=args.data_dir,
                            chaos=bool(args.kill_every)) \
                as (host, port):
            report = run_loadtest(
                host, port, requests=args.requests,
                concurrency=args.concurrency, unique=args.unique,
                seed=args.seed, trace_every=args.trace_every,
                multi_every=args.multi_every,
                priority_every=args.priority_every,
                kill_every=args.kill_every)
    else:
        if not wait_healthy(args.host, args.port, timeout_s=5.0):
            print(f"no healthy server at "
                  f"http://{args.host}:{args.port} "
                  f"(start one with `repro serve`, or use --spawn)",
                  file=sys.stderr)
            return 2
        report = run_loadtest(
            args.host, args.port, requests=args.requests,
            concurrency=args.concurrency, unique=args.unique,
            seed=args.seed, trace_every=args.trace_every,
            multi_every=args.multi_every,
            priority_every=args.priority_every,
            kill_every=args.kill_every)
    print(render(report))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.out}")
    status = 0
    if report["errors"]:
        print(f"\n{report['errors']} requests failed", file=sys.stderr)
        status = 1
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        problems = compare(report, baseline, threshold=args.threshold)
        if problems:
            print("\nserving regressions vs baseline:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            status = 1
        else:
            print(f"\nwithin {100 * args.threshold:.0f}% of baseline "
                  f"{args.baseline}")
    return status
