"""Regeneration of every table and figure in the paper's evaluation."""

from repro.eval import figure7, table3, table5, table6, table7
from repro.eval.paper_data import (HEADLINE, TABLE3_FINAL, TABLE5, TABLE6_CUMULATIVE,
                                   TABLE6_STEP_A, TABLE7, TABLE7_UTIL)
from repro.eval.report import format_table

__all__ = [
    "figure7", "table3", "table5", "table6", "table7",
    "HEADLINE", "TABLE3_FINAL", "TABLE5", "TABLE6_CUMULATIVE",
    "TABLE6_STEP_A", "TABLE7", "TABLE7_UTIL",
    "format_table",
]
