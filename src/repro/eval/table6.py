"""Table 6 regeneration: area overheads of the generalization ladder.

For each benchmark we compile (to get the virtual-unit requirements) and
run the homogenization ladder of :mod:`repro.arch.asic`: heterogeneous
reconfigurable units (a), homogeneous PMUs (b), homogeneous PCUs (c),
application-generalized PMUs (d) and PCUs (e), each relative to a
benchmark-specific ASIC estimate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps import ALL_APPS, App
from repro.arch.asic import overhead_table
from repro.compiler import compile_program
from repro.eval.paper_data import TABLE6_CUMULATIVE, TABLE6_STEP_A
from repro.eval.report import format_table

#: the paper's Table 6 covers 12 benchmarks (CNN excluded)
TABLE6_APPS = [a for a in ALL_APPS if a.name != "cnn"]


def generate(scale: str = "small",
             apps: Optional[List[App]] = None) -> Dict[str, Dict]:
    """Per-benchmark successive and cumulative overheads."""
    results = {}
    for app in (apps or TABLE6_APPS):
        compiled = compile_program(app.build(scale))
        results[app.name] = overhead_table(compiled.requirements)
    return results


def geomean(values) -> float:
    """Geometric mean."""
    values = list(values)
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def render(results: Dict[str, Dict]) -> str:
    """Paper-style table with cumulative values in parentheses."""
    headers = ["Benchmark", "a", "b (cum)", "c (cum)", "d (cum)",
               "e (cum)", "paper a", "paper e cum"]
    rows = []
    for name, t in results.items():
        rows.append([
            name, f"{t['a']:.2f}",
            f"{t['b']:.2f} ({t['b_cum']:.2f})",
            f"{t['c']:.2f} ({t['c_cum']:.2f})",
            f"{t['d']:.2f} ({t['d_cum']:.2f})",
            f"{t['e']:.2f} ({t['e_cum']:.2f})",
            f"{TABLE6_STEP_A.get(name, 0):.2f}",
            f"{TABLE6_CUMULATIVE.get(name, 0):.2f}",
        ])
    rows.append([
        "GeoMean",
        f"{geomean(t['a'] for t in results.values()):.2f}",
        "", "", "",
        f"(cum {geomean(t['e_cum'] for t in results.values()):.2f})",
        "2.77", "(11.46)",
    ])
    return format_table(headers, rows,
                        title="Table 6: generalization overheads vs ASIC")
