"""Table 6 regeneration: area overheads of the generalization ladder.

For each benchmark we compile (to get the virtual-unit requirements) and
run the homogenization ladder of :mod:`repro.arch.asic`: heterogeneous
reconfigurable units (a), homogeneous PMUs (b), homogeneous PCUs (c),
application-generalized PMUs (d) and PCUs (e), each relative to a
benchmark-specific ASIC estimate.

The module also measures the *control-protocol* overhead of each
benchmark — the fraction of unit-cycles spent waiting on tokens and
credits (Section 3.5) — using the exact stall-attribution pass of
:mod:`repro.trace` rather than ad-hoc counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps import ALL_APPS, App
from repro.arch.asic import overhead_table
from repro.bitstream.cache import CompileCache
from repro.eval.driver import (CacheTally, CompileSpec, cache_payload,
                               map_tasks, obtain, worker_cache)
from repro.eval.paper_data import TABLE6_CUMULATIVE, TABLE6_STEP_A
from repro.eval.report import format_table

#: the paper's Table 6 covers 12 benchmarks (CNN excluded)
TABLE6_APPS = [a for a in ALL_APPS if a.name != "cnn"]


def _collect(worker, apps: Optional[List[App]], scale: str, jobs: int,
             cache: Optional[CompileCache],
             tally: Optional[CacheTally]) -> Dict[str, Dict]:
    """Fan a per-app worker out over the pool, keeping registry order."""
    payloads = [(app.name, scale, cache_payload(cache))
                for app in (apps or TABLE6_APPS)]
    results: Dict[str, Dict] = {}
    for name, entry, outcome in map_tasks(worker, payloads, jobs=jobs):
        if tally is not None:
            tally.record(outcome)
        results[name] = entry
    return results


def _overhead_worker(payload: Tuple[str, str, Optional[str]]
                     ) -> Tuple[str, Dict, str]:
    name, scale, cache_dir = payload
    artifact, outcome = obtain(CompileSpec(name, scale),
                               worker_cache(cache_dir))
    return name, overhead_table(artifact.config.requirements), outcome


def generate(scale: str = "small", apps: Optional[List[App]] = None,
             jobs: int = 1, cache: Optional[CompileCache] = None,
             tally: Optional[CacheTally] = None) -> Dict[str, Dict]:
    """Per-benchmark successive and cumulative overheads."""
    return _collect(_overhead_worker, apps, scale, jobs, cache, tally)


def _control_worker(payload: Tuple[str, str, Optional[str]]
                    ) -> Tuple[str, Dict, str]:
    from repro.trace import RingTracer, StallCause, build_report
    name, scale, cache_dir = payload
    artifact, outcome = obtain(CompileSpec(name, scale),
                               worker_cache(cache_dir))
    # counters-only: keep no event ring, sample (almost) nothing
    tracer = RingTracer(capacity=1, sample=1 << 30)
    machine = artifact.machine(tracer=tracer)
    stats = machine.run()
    report = build_report(tracer, stats)
    totals = report.totals()
    return name, {
        "cycles": stats.cycles,
        "units": len(report.per_unit),
        "busy": totals.get(StallCause.BUSY, 0),
        "token_wait": totals.get(StallCause.TOKEN_WAIT, 0),
        "credit_wait": totals.get(StallCause.CREDIT_WAIT, 0),
        "active": report.active_cycles(),
        "control_overhead": report.control_overhead(),
    }, outcome


def control_overhead(scale: str = "tiny",
                     apps: Optional[List[App]] = None, jobs: int = 1,
                     cache: Optional[CompileCache] = None,
                     tally: Optional[CacheTally] = None
                     ) -> Dict[str, Dict]:
    """Per-benchmark control-protocol overhead from stall attribution.

    Simulates each benchmark with a counters-only tracer and classifies
    every unit-cycle with :func:`repro.trace.build_report`; the reported
    overhead is token+credit wait cycles over non-idle cycles.
    """
    return _collect(_control_worker, apps, scale, jobs, cache, tally)


def render_control(results: Dict[str, Dict]) -> str:
    """Control-protocol overhead table (token/credit wait attribution)."""
    headers = ["Benchmark", "cycles", "units", "busy", "token",
               "credit", "ctl ovh"]
    rows = []
    for name, r in results.items():
        rows.append([
            name, str(r["cycles"]), str(r["units"]), str(r["busy"]),
            str(r["token_wait"]), str(r["credit_wait"]),
            f"{r['control_overhead']:.3f}",
        ])
    mean = geomean(max(r["control_overhead"], 1e-9)
                   for r in results.values())
    rows.append(["GeoMean", "", "", "", "", "", f"{mean:.3f}"])
    return format_table(
        headers, rows,
        title="Control overhead: token/credit waits / non-idle "
              "unit-cycles (stall attribution)")


def geomean(values) -> float:
    """Geometric mean."""
    values = list(values)
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def render(results: Dict[str, Dict]) -> str:
    """Paper-style table with cumulative values in parentheses."""
    headers = ["Benchmark", "a", "b (cum)", "c (cum)", "d (cum)",
               "e (cum)", "paper a", "paper e cum"]
    rows = []
    for name, t in results.items():
        rows.append([
            name, f"{t['a']:.2f}",
            f"{t['b']:.2f} ({t['b_cum']:.2f})",
            f"{t['c']:.2f} ({t['c_cum']:.2f})",
            f"{t['d']:.2f} ({t['d_cum']:.2f})",
            f"{t['e']:.2f} ({t['e_cum']:.2f})",
            f"{TABLE6_STEP_A.get(name, 0):.2f}",
            f"{TABLE6_CUMULATIVE.get(name, 0):.2f}",
        ])
    rows.append([
        "GeoMean",
        f"{geomean(t['a'] for t in results.values()):.2f}",
        "", "", "",
        f"(cum {geomean(t['e_cum'] for t in results.values()):.2f})",
        "2.77", "(11.46)",
    ])
    return format_table(headers, rows,
                        title="Table 6: generalization overheads vs ASIC")
