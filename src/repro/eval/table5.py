"""Table 5 regeneration: the Plasticine area breakdown."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.arch.area import chip_area, pcu_breakdown, pmu_breakdown
from repro.arch.params import DEFAULT, PlasticineParams
from repro.arch.power import max_chip_power
from repro.eval.paper_data import HEADLINE, TABLE5
from repro.eval.report import format_table


def generate(params: PlasticineParams = DEFAULT) -> Dict[str, float]:
    """Compute every Table 5 entry plus the Section 4.2 headlines."""
    chip = chip_area(params)
    pcu = pcu_breakdown(params.pcu)
    pmu = pmu_breakdown(params.pmu)
    return {
        "pcu_total": chip.pcu_each,
        "pcu_fus": pcu["FUs"],
        "pcu_registers": pcu["Registers"],
        "pcu_fifos": pcu["FIFOs"],
        "pcu_control": pcu["Control"],
        "pmu_total": chip.pmu_each,
        "pmu_scratchpad": pmu["Scratchpad"],
        "pmu_fifos": pmu["FIFOs"],
        "pmu_registers": pmu["Registers"],
        "pmu_fus": pmu["FUs"],
        "pmu_control": pmu["Control"],
        "interconnect": chip.interconnect,
        "memory_controller": chip.memory_controller,
        "chip_total": chip.total,
        "peak_tflops": params.peak_tflops,
        "onchip_mb": params.onchip_mb,
        "max_power_w": max_chip_power(params),
    }


def render(measured: Dict[str, float]) -> str:
    """Side-by-side paper vs measured."""
    rows: List[Tuple] = []
    for key, paper_value in TABLE5.items():
        rows.append((key, f"{measured[key]:.3f}", f"{paper_value:.3f}"))
    for key, paper_value in HEADLINE.items():
        if key in measured:
            rows.append((key, f"{measured[key]:.2f}",
                         f"{paper_value:.2f}"))
    return format_table(("component", "measured", "paper"), rows,
                        title="Table 5: area breakdown (mm^2)")
