"""Plain-text table rendering shared by the evaluation harnesses."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: List[Sequence],
                 title: str = "") -> str:
    """Render rows as a fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def ratio_str(measured: float, paper: float) -> str:
    """'measured (paper P)' cell for paper-vs-measured tables."""
    return f"{measured:.2f} (paper {paper:.2f})"
