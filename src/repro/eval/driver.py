"""Shared parallel evaluation driver.

Every evaluation product (Table 6, Table 7, Figure 7, ``repro bench``)
reduces to the same shape: a list of per-app tasks, each of which
compiles (through the artifact cache when one is supplied) and then
measures something.  This module owns the common machinery:

* :func:`map_tasks` — run a worker over tasks either inline
  (``jobs<=1``, semantics identical to the historical sequential loops)
  or on a :class:`multiprocessing.Pool` with one task per child process
  (``maxtasksperchild=1`` — a fresh interpreter state per app, so a
  crashing or leaky simulation cannot poison its neighbours) and
  *ordered* result collection (``pool.map`` preserves task order).
* :class:`CacheTally` — aggregation of per-worker cache outcomes.
  Worker processes cannot mutate the parent's
  :class:`~repro.bitstream.cache.CacheStats`, so every worker returns an
  outcome string (``"hit"`` / ``"miss"`` / ``"off"``) in its payload and
  the parent folds them here.

Workers must be module-level functions (picklable); each opens its own
:class:`~repro.bitstream.cache.CompileCache` from the directory path in
its payload.  The on-disk cache is safe under this concurrency: writes
are atomic renames of canonical (byte-identical) content.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from repro.arch.params import DEFAULT, PlasticineParams
from repro.bitstream.artifact import Bitstream, CompileOptions
from repro.bitstream.cache import CompileCache


@dataclass(frozen=True)
class CompileSpec:
    """One compilation request, fully picklable (crosses process
    boundaries into pool workers)."""

    app: str
    scale: str = "small"
    params: PlasticineParams = DEFAULT
    options: CompileOptions = field(default_factory=CompileOptions)


def obtain(spec: CompileSpec,
           cache: Optional[CompileCache] = None
           ) -> Tuple[Bitstream, str]:
    """Resolve a spec to an artifact: cache hit, fresh compile, or
    uncached compile.  Returns ``(artifact, outcome)``."""
    from repro.compiler.artifact import compile_app_cached
    return compile_app_cached(spec.app, spec.scale, params=spec.params,
                              options=spec.options, cache=cache)


def worker_cache(cache_dir: Optional[str]) -> Optional[CompileCache]:
    """A worker-local cache handle from the payload's directory path."""
    return CompileCache(cache_dir) if cache_dir is not None else None


def cache_payload(cache: Optional[CompileCache]) -> Optional[str]:
    """The picklable form of a cache handle (its root directory)."""
    return str(cache.root) if cache is not None else None


@dataclass
class CacheTally:
    """Compile-cache outcomes aggregated across workers."""

    hits: int = 0
    misses: int = 0
    off: int = 0

    def record(self, outcome: str) -> None:
        """Fold one worker's outcome string into the tally."""
        if outcome == "hit":
            self.hits += 1
        elif outcome == "miss":
            self.misses += 1
        else:
            self.off += 1

    @property
    def lookups(self) -> int:
        """Cache-backed compilations (hits + misses)."""
        return self.hits + self.misses

    @property
    def all_hits(self) -> bool:
        """True when every cache-backed compile was served from disk."""
        return self.lookups > 0 and self.misses == 0

    def summary(self) -> str:
        """The CLI/CI-facing line, e.g.
        ``compile cache: 13 hits, 0 misses (0 compiled)``."""
        return (f"compile cache: {self.hits} "
                f"hit{'' if self.hits == 1 else 's'}, {self.misses} "
                f"miss{'' if self.misses == 1 else 'es'} "
                f"({self.misses} compiled)")


def map_tasks(worker: Callable, tasks: Iterable,
              jobs: int = 1) -> List:
    """Apply ``worker`` to every task, returning results in task order.

    ``jobs <= 1`` runs inline in this process — byte-for-byte the
    historical sequential behaviour (and friendly to debuggers and
    monkeypatching).  ``jobs > 1`` fans out over a process pool with one
    task per child; results arrive in submission order either way, so
    callers are oblivious to the parallelism.
    """
    tasks = list(tasks)
    if jobs is None:
        jobs = 1
    if jobs <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    processes = min(jobs, len(tasks))
    with multiprocessing.Pool(processes=processes,
                              maxtasksperchild=1) as pool:
        return pool.map(worker, tasks, chunksize=1)
