"""Table 7 regeneration: Plasticine vs FPGA across all 13 benchmarks.

For every benchmark:

1. compile and cycle-simulate the scaled dataset — validating the result
   against the reference executor and measuring resource utilization and
   unit activity;
2. extrapolate the Plasticine runtime to the Table 4 dataset with the
   analytical model (:mod:`repro.perf`);
3. estimate the FPGA baseline runtime and power
   (:mod:`repro.arch.fpga`);
4. report utilization, powers, performance ratio and perf/W ratio next
   to the paper's published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps import ALL_APPS, App
from repro.arch.fpga import fpga_power_w, fpga_runtime_s
from repro.arch.power import chip_power
from repro.bitstream.cache import CompileCache
from repro.eval.driver import (CacheTally, CompileSpec, cache_payload,
                               map_tasks, obtain, worker_cache)
from repro.eval.paper_data import TABLE7, TABLE7_UTIL
from repro.eval.report import format_table
from repro.perf import plasticine_runtime_s


@dataclass
class Table7Row:
    """One benchmark's measurements."""

    name: str
    util_pcu: float = 0.0
    util_pmu: float = 0.0
    util_ag: float = 0.0
    util_fu: float = 0.0
    fpga_power_w: float = 0.0
    plasticine_power_w: float = 0.0
    plasticine_s: float = 0.0
    fpga_s: float = 0.0
    sim_cycles: int = 0
    paper_perf: Optional[float] = None
    paper_perf_w: Optional[float] = None

    @property
    def perf_ratio(self) -> float:
        """FPGA time / Plasticine time (higher = Plasticine faster)."""
        return self.fpga_s / self.plasticine_s if self.plasticine_s else 0

    @property
    def perf_per_watt_ratio(self) -> float:
        """Perf/W ratio of Plasticine over the FPGA."""
        if not self.plasticine_s or not self.plasticine_power_w:
            return 0.0
        plas = 1.0 / (self.plasticine_s * self.plasticine_power_w)
        fpga = 1.0 / (self.fpga_s * self.fpga_power_w)
        return plas / fpga


def evaluate_app(app: App, scale: str = "small",
                 validate: bool = True,
                 cache: Optional[CompileCache] = None) -> Table7Row:
    """Measure one benchmark end to end.

    Compilation goes through the artifact layer: a cache hit skips the
    compiler entirely and simulates the deserialized bitstream (apps
    build deterministically, so the frozen input data matches what a
    fresh build would produce).
    """
    artifact, _ = obtain(CompileSpec(app.name, scale), cache)
    config = artifact.config
    machine = artifact.machine()
    stats = machine.run()
    if validate:
        expected = app.expected(app.build(scale))
        results = {name: machine.result(name) for name in expected}
        app.check(artifact.dhdl, results, expected)

    util = config.utilization()
    activity = stats.activity(config, config.params)
    profile = app.paper_profile()

    # project the scaled-down mapping to the paper-sized one: the paper
    # unrolls outer loops by the benchmark's parallelization factor,
    # which duplicates inner controllers (and their memories/AGs)
    from dataclasses import replace as _replace
    params = config.params
    factor = max(1, profile.outer_parallelism)
    # activities are floored at steady-state levels: the paper's runs
    # keep their (unrolled) units saturated for the bulk of execution,
    # while our scaled datasets spend a larger fraction in fill/drain
    projected = _replace(
        activity,
        pcus_used=min(params.num_pcus, activity.pcus_used * factor),
        pcu_activity=min(1.0, max(activity.pcu_activity * 1.5, 0.55)),
        pmus_used=min(params.num_pmus, activity.pmus_used * factor),
        pmu_activity=min(1.0, max(activity.pmu_activity * 1.5, 0.5)),
        ags_used=min(params.num_ags, max(activity.ags_used,
                                         activity.ags_used * factor // 2)),
        ag_activity=min(1.0, max(activity.ag_activity, 0.5)),
        switches_used=min((params.grid_cols + 1) * (params.grid_rows + 1),
                          activity.switches_used * factor),
        switch_activity=min(1.0, max(activity.switch_activity, 0.4)),
    )
    power = chip_power(projected, params)
    measured_eff = stats.dram_busy_fraction if \
        stats.dram_busy_fraction > 0.05 else None
    plasticine_s = plasticine_runtime_s(profile)
    fpga_s = fpga_runtime_s(profile)
    fpga_w = fpga_power_w(profile)

    paper = TABLE7.get(app.name)
    row = Table7Row(
        name=app.name,
        util_pcu=util["pcu"], util_pmu=util["pmu"], util_ag=util["ag"],
        util_fu=util["fu"],
        fpga_power_w=fpga_w,
        plasticine_power_w=power,
        plasticine_s=plasticine_s,
        fpga_s=fpga_s,
        sim_cycles=stats.cycles,
        paper_perf=paper[2] if paper else None,
        paper_perf_w=paper[3] if paper else None,
    )
    return row


def _evaluate_worker(payload: Tuple[str, str, bool, Optional[str]]
                     ) -> Tuple[Table7Row, str]:
    """Pool worker: evaluate one app, report the cache outcome."""
    from repro.apps.registry import get_app
    name, scale, validate, cache_dir = payload
    cache = worker_cache(cache_dir)
    row = evaluate_app(get_app(name), scale=scale, validate=validate,
                       cache=cache)
    if cache is None:
        outcome = "off"
    else:
        outcome = "hit" if cache.stats.hits else "miss"
    return row, outcome


def generate(scale: str = "small", apps: Optional[List[App]] = None,
             validate: bool = True, jobs: int = 1,
             cache: Optional[CompileCache] = None,
             tally: Optional[CacheTally] = None) -> List[Table7Row]:
    """Regenerate the full Table 7.

    ``jobs > 1`` evaluates apps on a process pool (one fresh worker per
    app, results in registry order — the table is identical to a
    sequential run).  With a ``cache``, compiles are served from disk
    when possible; pass a ``tally`` to collect hit/miss counts across
    workers.
    """
    payloads = [(app.name, scale, validate, cache_payload(cache))
                for app in (apps or ALL_APPS)]
    results = map_tasks(_evaluate_worker, payloads, jobs=jobs)
    rows = []
    for row, outcome in results:
        if tally is not None:
            tally.record(outcome)
        rows.append(row)
    return rows


def render(rows: List[Table7Row]) -> str:
    """Format the table like the paper's, with paper values inline."""
    headers = ["Benchmark", "PCU%", "PMU%", "AG%", "FU%",
               "FPGA W", "Plas W", "Perf", "Perf(paper)",
               "Perf/W", "Perf/W(paper)"]
    body = []
    for row in rows:
        body.append([
            row.name,
            f"{100 * row.util_pcu:.1f}", f"{100 * row.util_pmu:.1f}",
            f"{100 * row.util_ag:.1f}", f"{100 * row.util_fu:.1f}",
            f"{row.fpga_power_w:.1f}",
            f"{row.plasticine_power_w:.1f}",
            f"{row.perf_ratio:.1f}",
            f"{row.paper_perf:.1f}" if row.paper_perf else "-",
            f"{row.perf_per_watt_ratio:.1f}",
            f"{row.paper_perf_w:.1f}" if row.paper_perf_w else "-",
        ])
    return format_table(headers, body,
                        title="Table 7: Plasticine vs FPGA")
