"""Table 3 regeneration: design space and the selected parameters.

The ranges come straight from :data:`repro.arch.params.DESIGN_SPACE`;
the "selected" column is re-derived by running the Figure 7 sweeps and
taking the overhead-minimising value for each PCU parameter (with the
paper's tie-breaking choices noted where the curve is flat).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.arch.params import DEFAULT, DESIGN_SPACE
from repro.eval.figure7 import SWEEPS, best_value, sweep
from repro.eval.paper_data import TABLE3_FINAL
from repro.eval.report import format_table


def generate(scale: str = "tiny",
             run_sweeps: bool = True) -> Dict[str, Dict]:
    """Ranges, paper-selected values, and (optionally) re-derived
    optima per PCU parameter."""
    rows: Dict[str, Dict] = {}
    derived: Dict[str, Optional[int]] = {}
    if run_sweeps:
        for key, (param, values) in SWEEPS.items():
            curves = sweep(param, values, scale=scale)
            derived[param] = best_value(curves)
        from repro.eval.figure7 import pmu_sweep, select_bank_kb
        derived["bank_kb"] = select_bank_kb(pmu_sweep())
    final = {
        "lanes": DEFAULT.pcu.lanes,
        "stages": DEFAULT.pcu.stages,
        "regs_per_stage": DEFAULT.pcu.regs_per_stage,
        "scalar_in": DEFAULT.pcu.scalar_in,
        "scalar_out": DEFAULT.pcu.scalar_out,
        "vector_in": DEFAULT.pcu.vector_in,
        "vector_out": DEFAULT.pcu.vector_out,
        "bank_kb": DEFAULT.pmu.bank_kb,
        "banks": DEFAULT.pmu.banks,
        "pmu_stages": DEFAULT.pmu.stages,
        "pcus": DEFAULT.num_pcus,
        "pmus": DEFAULT.num_pmus,
    }
    range_of = {
        "lanes": DESIGN_SPACE["pcu_lanes"],
        "stages": DESIGN_SPACE["pcu_stages"],
        "regs_per_stage": DESIGN_SPACE["pcu_regs_per_stage"],
        "scalar_in": DESIGN_SPACE["pcu_scalar_in"],
        "scalar_out": DESIGN_SPACE["pcu_scalar_out"],
        "vector_in": DESIGN_SPACE["pcu_vector_in"],
        "vector_out": DESIGN_SPACE["pcu_vector_out"],
        "bank_kb": DESIGN_SPACE["pmu_bank_kb"],
    }
    for name, value in final.items():
        rows[name] = {
            "range": range_of.get(name, "-"),
            "selected": value,
            "paper": TABLE3_FINAL.get(name),
            "rederived": derived.get(name),
        }
    return rows


def render(rows: Dict[str, Dict]) -> str:
    """Paper-style parameter table."""
    headers = ["parameter", "range", "selected", "paper", "re-derived"]
    body = []
    for name, row in rows.items():
        rng = row["range"]
        rng_str = (f"{min(rng)}..{max(rng)}"
                   if isinstance(rng, tuple) else str(rng))
        body.append([name, rng_str, row["selected"],
                     row["paper"] if row["paper"] is not None else "-",
                     row["rederived"] if row["rederived"] is not None
                     else "-"])
    return format_table(headers, body,
                        title="Table 3: design space and selection")
