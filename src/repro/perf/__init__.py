"""Analytical performance scaling to paper-sized datasets."""

from repro.perf.model import (DEFAULT_KNOBS, PerfKnobs, bound_of,
                              plasticine_runtime_s, random_access_gbps)

__all__ = [
    "DEFAULT_KNOBS", "PerfKnobs", "bound_of", "plasticine_runtime_s",
    "random_access_gbps",
]
