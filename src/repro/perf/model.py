"""Analytical Plasticine performance model for paper-scale datasets.

The cycle-level simulator validates mappings on scaled-down data; the
paper's Table 7 runs datasets up to 768 M elements, which no Python
simulator can step through cycle by cycle.  Steady-state throughput of
every benchmark is linear in its iteration count, so we extrapolate with
a roofline-style model whose terms mirror the simulator's mechanisms:

* **compute** — utilized FLOPs/cycle = lanes x pipeline stages in use x
  duplicated inner controllers, capped at the chip peak;
* **streaming** — dense traffic at the DDR3 peak times a measured or
  default efficiency;
* **random** — gathers/scatters limited by the tFAW activation budget
  (16 row activations per 30 ns across 4 channels), multiplied by the
  useful words each burst carries after coalescing;
* **sequential** — pipeline fill/drain per dependent outer iteration.

Every constant is either a hardware parameter from
:mod:`repro.arch.params` or an explicitly documented calibration knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.params import DEFAULT, PlasticineParams
from repro.arch.workload import WorkloadProfile


@dataclass(frozen=True)
class PerfKnobs:
    """Calibration knobs for the analytical model."""

    #: fraction of the DDR3 peak dense streams achieve (row-hit heavy)
    stream_efficiency: float = 0.82
    #: average useful 4-byte words per random burst after coalescing
    coalesce_words: float = 1.6
    #: row activations allowed per tFAW window per channel
    activates_per_faw: int = 4
    #: tFAW window in ns
    faw_ns: float = 30.0
    #: fraction of configured FUs doing useful work in the steady state
    compute_efficiency: float = 0.85
    #: pipeline fill/drain cycles charged per sequential outer iteration
    seq_overhead_cycles: int = 40


DEFAULT_KNOBS = PerfKnobs()


def random_access_gbps(params: PlasticineParams = DEFAULT,
                       knobs: PerfKnobs = DEFAULT_KNOBS) -> float:
    """Useful random-access bandwidth (GB/s) through the coalescers."""
    bursts_per_ns = (params.dram.channels * knobs.activates_per_faw
                     / knobs.faw_ns)
    return bursts_per_ns * knobs.coalesce_words * 4.0


def plasticine_runtime_s(profile: WorkloadProfile,
                         params: PlasticineParams = DEFAULT,
                         knobs: PerfKnobs = DEFAULT_KNOBS,
                         measured_stream_eff: Optional[float] = None
                         ) -> float:
    """Estimated Plasticine runtime in seconds for one workload."""
    clock_hz = params.clock_ghz * 1e9

    # compute roof: lanes x pipeline x outer duplication, chip capped
    peak_per_cycle = params.num_pcus * params.pcu.fus
    if profile.plasticine_parallelism is not None:
        exploited = profile.plasticine_parallelism
    else:
        exploited = (profile.inner_parallelism
                     * max(1, min(profile.pipeline_ops,
                                  params.pcu.stages * 16))
                     * profile.outer_parallelism)
    per_cycle = min(peak_per_cycle,
                    exploited) * knobs.compute_efficiency
    compute_s = profile.flops / (per_cycle * clock_hz)

    # memory roofs
    eff = (measured_stream_eff if measured_stream_eff
           else knobs.stream_efficiency)
    stream_s = profile.stream_bytes / (params.dram.peak_gbps * 1e9 * eff)
    if profile.plasticine_coalesce_words is not None:
        from dataclasses import replace
        knobs = replace(knobs,
                        coalesce_words=profile.plasticine_coalesce_words)
    random_s = (4.0 * profile.random_accesses
                / (random_access_gbps(params, knobs) * 1e9))

    seq_s = (profile.sequential_iters
             * knobs.seq_overhead_cycles) / clock_hz
    return max(compute_s, stream_s + random_s) + seq_s


def bound_of(profile: WorkloadProfile,
             params: PlasticineParams = DEFAULT,
             knobs: PerfKnobs = DEFAULT_KNOBS) -> str:
    """Which roof binds this workload on Plasticine."""
    clock_hz = params.clock_ghz * 1e9
    peak_per_cycle = params.num_pcus * params.pcu.fus
    exploited = (profile.inner_parallelism
                 * max(1, min(profile.pipeline_ops,
                              params.pcu.stages * 16))
                 * profile.outer_parallelism)
    per_cycle = min(peak_per_cycle, exploited) * knobs.compute_efficiency
    compute_s = profile.flops / (per_cycle * clock_hz)
    stream_s = profile.stream_bytes / (params.dram.peak_gbps * 1e9
                                       * knobs.stream_efficiency)
    random_s = (4.0 * profile.random_accesses
                / (random_access_gbps(params, knobs) * 1e9))
    terms = {"compute": compute_s, "stream": stream_s, "random": random_s}
    return max(terms, key=terms.get)
