"""Control schemes for DHDL controllers (Section 3.5 of the paper).

Outer controllers schedule their children with one of three protocols:

* ``SEQUENTIAL`` — one data-dependent child active at a time, coordinated
  with single tokens (loop-carried dependencies).
* ``PIPELINE`` — coarse-grained pipelining: N tokens in flight, credits for
  backpressure, intermediate memories M-buffered by producer/consumer
  distance.
* ``STREAMING`` — fine-grained pipelining through FIFOs; a child runs when
  its input FIFOs are non-empty and output FIFOs are non-full.

``INNER`` marks leaf controllers (no children; a dataflow body).
"""

from __future__ import annotations

import enum


class Scheme(enum.Enum):
    """Controller scheduling protocol."""

    SEQUENTIAL = "sequential"
    PIPELINE = "pipeline"
    STREAMING = "streaming"
    INNER = "inner"

    @property
    def is_outer(self) -> bool:
        """True for schemes that coordinate children."""
        return self is not Scheme.INNER

    def __str__(self):
        return self.value
