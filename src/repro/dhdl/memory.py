"""Memory declarations in the DHDL IR.

Three storage classes, mirroring Table 2 of the paper:

* :class:`DramRef` — an off-chip collection (wraps a pattern
  :class:`~repro.patterns.collections.Array`); accessed only through AG
  transfer nodes.
* :class:`Sram` — an on-chip scratchpad tile living in a PMU, with a
  banking mode and an N-buffer depth.
* :class:`Reg` — a scalar register (fold accumulators, loop-carried
  scalars); lives in PCU pipeline registers or switch registers.
* :class:`FifoDecl` — a streaming FIFO between controllers.

All of them duck-type the pattern ``Array`` interface (``name``, ``shape``,
``dtype``) so symbolic :class:`~repro.patterns.expr.Load` nodes can read
them directly inside inner-controller bodies.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.errors import IRError
from repro.patterns import expr as E
from repro.patterns.collections import Array


class BankingMode(enum.Enum):
    """PMU scratchpad banking configuration (Section 3.2)."""

    #: Linear accesses striped across banks (dense tiles).
    STRIDED = "strided"
    #: Streaming accesses in arrival order.
    FIFO = "fifo"
    #: Sliding-window reuse (CNN row buffers).
    LINE_BUFFER = "line_buffer"
    #: Contents replicated in every bank: N parallel random read ports.
    DUPLICATION = "duplication"

    def __str__(self):
        return self.value


class DramRef:
    """Off-chip DRAM collection, 4-byte words, row-major."""

    def __init__(self, array: Array):
        self.array = array
        self.name = array.name
        self.shape = array.shape
        self.dtype = array.dtype

    def words(self) -> int:
        """Allocation size in 32-bit words."""
        return max(1, self.array.static_elems())

    def __repr__(self):
        return f"DramRef({self.name})"


class Sram:
    """An on-chip scratchpad tile (mapped to one or more PMUs).

    ``shape`` is the logical tile shape in words.  ``banking`` selects the
    address-decoder mode; ``banks`` parallel read/write streams exist in
    strided/duplication modes.  ``nbuf`` is the N-buffer depth chosen by
    the compiler from producer/consumer distances (1 = single buffer,
    2 = classic double buffering).
    """

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: str,
                 banking: BankingMode = BankingMode.STRIDED,
                 nbuf: int = 1, bank_stride: int = 1):
        if not shape or any(int(d) <= 0 for d in shape):
            raise IRError(f"SRAM {name!r} needs a positive static shape")
        self.name = name
        self.shape = tuple(int(d) for d in shape)
        self.dtype = dtype
        self.banking = banking
        self.nbuf = nbuf
        #: address-decoder stride: the compiler configures it so that
        #: the vectorised access dimension interleaves across banks
        #: (word ``a`` lives in bank ``(a // bank_stride) % banks``)
        self.bank_stride = max(1, bank_stride)

    def words(self) -> int:
        """Words per buffer instance."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    def total_words(self) -> int:
        """Words including all N-buffer copies."""
        return self.words() * self.nbuf

    def __getitem__(self, indices) -> E.Load:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return E.Load(self, indices)

    def __repr__(self):
        return (f"Sram({self.name}, {self.shape}, {self.banking}, "
                f"nbuf={self.nbuf})")


class Reg:
    """A scalar register cell (optionally N-buffered like an SRAM)."""

    shape: Tuple[int, ...] = ()

    def __init__(self, name: str, dtype: str = E.FLOAT32, init=None,
                 nbuf: int = 1):
        self.name = name
        self.dtype = dtype
        self.init = init
        self.nbuf = nbuf

    def read(self) -> E.Load:
        """Symbolic read of this register."""
        return E.Load(self, ())

    def words(self) -> int:
        """One word per buffer instance."""
        return 1

    def __repr__(self):
        return f"Reg({self.name})"


class FifoDecl:
    """A word- or vector-granularity FIFO between two controllers."""

    shape: Tuple[int, ...] = ()

    def __init__(self, name: str, dtype: str = E.FLOAT32, depth: int = 16,
                 vector: bool = True):
        if depth <= 0:
            raise IRError("FIFO depth must be positive")
        self.name = name
        self.dtype = dtype
        self.depth = depth
        self.vector = vector

    def __repr__(self):
        kind = "vec" if self.vector else "scalar"
        return f"FifoDecl({self.name}, depth={self.depth}, {kind})"


Memory = (DramRef, Sram, Reg, FifoDecl)


def is_onchip(mem) -> bool:
    """True for memories that occupy PMU/PCU storage."""
    return isinstance(mem, (Sram, Reg, FifoDecl))
