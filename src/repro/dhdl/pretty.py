"""Human-readable printing of DHDL programs and expressions."""

from __future__ import annotations

from repro.dhdl.ir import (DhdlProgram, Gather, InnerCompute,
                           OuterController, Scatter, StreamStore,
                           TileLoad, TileStore)
from repro.dhdl.ir import (EmitStmt, HashReduceStmt, ReduceStmt, WriteStmt)
from repro.patterns import expr as E


def format_expr(node: E.Expr) -> str:
    """Render an expression tree as a compact infix string."""
    if isinstance(node, E.Const):
        return repr(node.value)
    if isinstance(node, E.Idx):
        return node.name
    if isinstance(node, E.Var):
        return node.name
    if isinstance(node, E.Load):
        idxs = ", ".join(format_expr(i) for i in node.indices)
        return f"{node.array.name}[{idxs}]" if idxs else node.array.name
    if isinstance(node, E.BinOp):
        return (f"({format_expr(node.lhs)} {node.op} "
                f"{format_expr(node.rhs)})")
    if isinstance(node, E.UnOp):
        return f"{node.op}({format_expr(node.operand)})"
    if isinstance(node, E.Select):
        return (f"sel({format_expr(node.cond)}, "
                f"{format_expr(node.if_true)}, "
                f"{format_expr(node.if_false)})")
    return repr(node)


def _format_stmt(stmt) -> str:
    if isinstance(stmt, WriteStmt):
        addr = ", ".join(format_expr(a) for a in stmt.addr)
        return f"{stmt.mem.name}[{addr}] = {format_expr(stmt.value)}"
    if isinstance(stmt, ReduceStmt):
        parts = ", ".join(
            f"{m.name} (+)= {format_expr(v)}"
            for m, v in zip(stmt.mems, stmt.values))
        return parts + (" [carry]" if stmt.carry else "")
    if isinstance(stmt, EmitStmt):
        return (f"emit {format_expr(stmt.value)} to {stmt.fifo.name} "
                f"when {format_expr(stmt.cond)}")
    if isinstance(stmt, HashReduceStmt):
        return (f"{stmt.mem.name}[{format_expr(stmt.key)}] (+)= "
                f"{format_expr(stmt.value)}")
    return repr(stmt)


def _chain_str(chain) -> str:
    if chain is None:
        return ""
    parts = []
    for counter, idx in zip(chain.counters, chain.indices):
        extent = counter.static_extent
        span = str(extent) if extent is not None else "?"
        suffix = f" par {counter.par}" if counter.par > 1 else ""
        parts.append(f"{idx.name}<{span}{suffix}>")
    return " (" + ", ".join(parts) + ")"


def format_program(program: DhdlProgram) -> str:
    """Render the controller tree with memories and bodies."""
    lines = [f"dhdl {program.name}:"]
    for sram in program.srams:
        lines.append(f"  sram {sram.name} {list(sram.shape)} "
                     f"{sram.banking} nbuf={sram.nbuf}")
    for reg in program.regs:
        lines.append(f"  reg {reg.name}")
    for fifo in program.fifos:
        lines.append(f"  fifo {fifo.name} depth={fifo.depth}")

    def _walk(ctrl, depth):
        pad = "  " * (depth + 1)
        if isinstance(ctrl, OuterController):
            lines.append(f"{pad}{ctrl.scheme} {ctrl.name}"
                         f"{_chain_str(ctrl.chain)}:")
            for child in ctrl.children:
                _walk(child, depth + 1)
        elif isinstance(ctrl, InnerCompute):
            lines.append(f"{pad}inner {ctrl.name}{_chain_str(ctrl.chain)}:")
            for stmt in ctrl.stmts:
                lines.append(f"{pad}  {_format_stmt(stmt)}")
        elif isinstance(ctrl, TileLoad):
            offs = ", ".join(format_expr(o) for o in ctrl.offsets)
            lines.append(f"{pad}load {ctrl.dram.name}[{offs}] tile"
                         f"{list(ctrl.tile_shape)} -> {ctrl.sram.name}")
        elif isinstance(ctrl, TileStore):
            offs = ", ".join(format_expr(o) for o in ctrl.offsets)
            lines.append(f"{pad}store {ctrl.sram.name} -> "
                         f"{ctrl.dram.name}[{offs}] tile"
                         f"{list(ctrl.tile_shape)}")
        elif isinstance(ctrl, StreamStore):
            lines.append(f"{pad}stream {ctrl.fifo.name} -> "
                         f"{ctrl.dram.name} (count -> "
                         f"{ctrl.count_reg.name}"
                         f"{', accumulate' if ctrl.accumulate else ''})")
        elif isinstance(ctrl, Gather):
            lines.append(f"{pad}gather {ctrl.dram.name}"
                         f"[{ctrl.addr_sram.name}] -> {ctrl.dst_sram.name}")
        elif isinstance(ctrl, Scatter):
            lines.append(f"{pad}scatter {ctrl.val_sram.name} -> "
                         f"{ctrl.dram.name}[{ctrl.addr_sram.name}]")
        else:
            lines.append(f"{pad}{ctrl!r}")

    _walk(program.root, 0)
    return "\n".join(lines)
