"""DHDL-style intermediate representation (Section 3.6 of the paper)."""

from repro.dhdl.control import Scheme
from repro.dhdl.ir import (Counter, CounterChain, DhdlProgram, EmitStmt,
                           Gather, HashReduceStmt, InnerCompute,
                           OuterController, ReduceStmt, Scatter, StreamStore,
                           TileLoad, TileStore, WriteStmt)
from repro.dhdl.memory import (BankingMode, DramRef, FifoDecl, Memory, Reg,
                               Sram, is_onchip)
from repro.dhdl.pretty import format_expr, format_program
from repro.dhdl.validate import validate

__all__ = [
    "Scheme",
    "Counter", "CounterChain", "DhdlProgram", "EmitStmt", "Gather",
    "HashReduceStmt", "InnerCompute", "OuterController", "ReduceStmt",
    "Scatter", "StreamStore", "TileLoad", "TileStore", "WriteStmt",
    "BankingMode", "DramRef", "FifoDecl", "Memory", "Reg", "Sram",
    "is_onchip",
    "format_expr", "format_program",
    "validate",
]
