"""Controller dataflow analysis: which memories a controller touches.

These queries define the producer->consumer relation over a DHDL
controller tree.  Both sides of the toolchain depend on them — the
compiler (N-buffer inference, dependency edges, routing) and the
simulator (token/credit edges between sibling controllers) — so they
live in the IR layer rather than in either consumer.

Names are returned as plain strings; DRAM collections are prefixed
``dram:`` to keep the off-chip namespace disjoint from on-chip memories.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.dhdl.ir import (Gather, InnerCompute, OuterController, Scatter,
                           StreamStore, TileLoad, TileStore)
from repro.dhdl.memory import DramRef
from repro.errors import SimulationError
from repro.patterns import expr as E


def loads_of(exprs) -> Set[str]:
    """Names of every collection read by ``Load`` nodes under ``exprs``."""
    names: Set[str] = set()
    for root in exprs:
        for load in E.collect_loads(root):
            names.add(load.array.name)
    return names


def mem_reads(ctrl) -> Set[str]:
    """Names of memories (on-chip and ``dram:``-prefixed) a controller
    reads."""
    if isinstance(ctrl, InnerCompute):
        names = {m.name for m in ctrl.memories_read()}
        for counter in ctrl.chain.counters:
            names |= loads_of((counter.lo, counter.hi))
        return names
    if isinstance(ctrl, TileLoad):
        return loads_of(ctrl.offsets) | {f"dram:{ctrl.dram.name}"}
    if isinstance(ctrl, TileStore):
        names = {ctrl.sram.name} | loads_of(ctrl.offsets)
        if ctrl.count is not None:
            names |= loads_of((ctrl.count,))
        return names
    if isinstance(ctrl, Gather):
        names = {ctrl.addr_sram.name, f"dram:{ctrl.dram.name}"}
        if ctrl.count is not None:
            names |= loads_of((ctrl.count,))
        return names
    if isinstance(ctrl, Scatter):
        names = {ctrl.addr_sram.name, ctrl.val_sram.name}
        if ctrl.count is not None:
            names |= loads_of((ctrl.count,))
        return names
    if isinstance(ctrl, StreamStore):
        return loads_of((ctrl.base_offset,)) | {ctrl.fifo.name}
    if isinstance(ctrl, OuterController):
        names = set()
        if ctrl.chain is not None:
            for counter in ctrl.chain.counters:
                names |= loads_of((counter.lo, counter.hi))
        for child in ctrl.children:
            names |= mem_reads(child)
        # memories produced inside the scope are not external reads
        names -= mem_writes(ctrl)
        return names
    raise SimulationError(f"unknown controller {ctrl!r}")


def mem_writes(ctrl) -> Set[str]:
    """Names of memories a controller writes."""
    if isinstance(ctrl, InnerCompute):
        names = set()
        for stmt in ctrl.stmts:
            targets = getattr(stmt, "targets", None)
            if targets is not None:
                names.update(t.name for t in targets)
            else:
                names.add(stmt.target.name)
        return names
    if isinstance(ctrl, TileLoad):
        return {ctrl.sram.name}
    if isinstance(ctrl, TileStore):
        return {f"dram:{ctrl.dram.name}"}
    if isinstance(ctrl, Gather):
        return {ctrl.dst_sram.name}
    if isinstance(ctrl, Scatter):
        return {f"dram:{ctrl.dram.name}"}
    if isinstance(ctrl, StreamStore):
        return {ctrl.count_reg.name, f"dram:{ctrl.dram.name}"}
    if isinstance(ctrl, OuterController):
        names: Set[str] = set()
        for child in ctrl.children:
            names |= mem_writes(child)
        return names
    raise SimulationError(f"unknown controller {ctrl!r}")


def assign_bases(drams: Iterable[DramRef],
                 alignment: int = 4096) -> Dict[str, int]:
    """Lay out DRAM arrays consecutively at ``alignment``-byte boundaries.

    Declaration order determines addresses, so the layout is part of the
    compiled artifact; the compiler freezes it into the bitstream's
    ``dram_base`` map and the simulator merely obeys it.
    """
    base = {}
    cursor = alignment  # keep address 0 unused (easier debugging)
    for ref in drams:
        base[ref.name] = cursor
        size = 4 * ref.words()
        cursor += ((size + alignment - 1) // alignment) * alignment
    return base
