"""DHDL-style intermediate representation (Section 3.6 of the paper).

A :class:`DhdlProgram` is a tree of controllers:

* :class:`OuterController` — carries a :class:`~repro.dhdl.control.Scheme`
  (sequential / coarse-grained pipeline / streaming), an optional loop
  counter chain, and children;
* leaf controllers:

  - :class:`InnerCompute` — a counter chain plus a dataflow body of
    statements over on-chip memories (maps to PCUs);
  - :class:`TileLoad` / :class:`TileStore` — dense DRAM bursts into/out of
    an SRAM tile (map to address generators issuing burst commands);
  - :class:`Gather` / :class:`Scatter` — sparse DRAM transfers through the
    coalescing units.

Expressions inside bodies reuse :mod:`repro.patterns.expr`; their ``Load``
nodes reference DHDL memories (:class:`~repro.dhdl.memory.Sram`,
:class:`~repro.dhdl.memory.Reg`), never DRAM.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import IRError
from repro.dhdl.control import Scheme
from repro.dhdl.memory import DramRef, FifoDecl, Reg, Sram, is_onchip
from repro.patterns import expr as E

# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------


class Counter:
    """One programmable counter: ``lo .. hi-1`` step ``step``, unrolled
    ``par`` ways per cycle.

    ``lo``/``hi`` are ints or symbolic expressions over enclosing indices
    and register reads (data-dependent ranges, dynamic lengths).
    """

    def __init__(self, lo, hi, step: int = 1, par: int = 1):
        self.lo = lo if isinstance(lo, E.Expr) else E.wrap(int(lo))
        self.hi = hi if isinstance(hi, E.Expr) else E.wrap(int(hi))
        if step <= 0 or par <= 0:
            raise IRError("counter step and par must be positive")
        self.step = step
        self.par = par

    @property
    def static_extent(self) -> Optional[int]:
        """Trip count when lo/hi are constants, else None."""
        if isinstance(self.lo, E.Const) and isinstance(self.hi, E.Const):
            span = self.hi.value - self.lo.value
            return max(0, -(-span // self.step))
        return None

    def __repr__(self):
        return f"Counter(par={self.par})"


class CounterChain:
    """A chain of counters; the last one is the innermost (vectorised)."""

    def __init__(self, counters: Sequence[Counter],
                 indices: Sequence[E.Idx]):
        if len(counters) != len(indices):
            raise IRError("counter chain needs one index per counter")
        self.counters = tuple(counters)
        self.indices = tuple(indices)

    @property
    def depth(self) -> int:
        """Number of nested counters."""
        return len(self.counters)

    @property
    def inner_par(self) -> int:
        """Parallelization of the innermost counter (SIMD width used)."""
        return self.counters[-1].par if self.counters else 1

    def trip_hint(self, default_dynamic: int = 8) -> int:
        """Static iteration-count estimate (dynamic ranges use a default)."""
        total = 1
        for counter in self.counters:
            extent = counter.static_extent
            total *= extent if extent is not None else default_dynamic
        return total

    def __repr__(self):
        return f"CounterChain(depth={self.depth}, par={self.inner_par})"


# ---------------------------------------------------------------------------
# Inner-controller statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of inner-controller dataflow statements."""

    def memories_read(self):
        """On-chip memories read by this statement's expressions."""
        mems = []
        for root in self.exprs():
            for load in E.collect_loads(root):
                if is_onchip(load.array) and load.array not in mems:
                    mems.append(load.array)
        return mems

    def exprs(self) -> Tuple[E.Expr, ...]:
        """All expression roots of the statement."""
        raise NotImplementedError

    @property
    def target(self):
        """The memory written by the statement."""
        raise NotImplementedError


class WriteStmt(Stmt):
    """Write ``value`` to ``mem[addr]`` each (vectorised) iteration."""

    def __init__(self, mem: Union[Sram, Reg], addr: Sequence[E.ExprLike],
                 value: E.ExprLike):
        self.mem = mem
        self.addr = tuple(E.wrap(a) for a in addr)
        self.value = E.wrap(value)
        if isinstance(mem, Sram) and len(self.addr) != len(mem.shape):
            raise IRError(
                f"write to {mem.name!r}: {len(self.addr)} addresses for "
                f"{len(mem.shape)}-d SRAM")
        if isinstance(mem, Reg) and self.addr:
            raise IRError("register writes take no address")

    def exprs(self):
        return self.addr + (self.value,)

    @property
    def target(self):
        return self.mem

    def __repr__(self):
        return f"WriteStmt({self.mem.name})"


class ReduceStmt(Stmt):
    """Accumulate value(s) into register(s)/SRAM cell(s) across the
    counter chain with an associative combine.

    Width-W folds carry W accumulators whose combine expressions may
    cross-reference each other (argmin carries (best, argbest)); all W
    share one address.  ``combines[k]`` is an expression over the 2W
    :class:`~repro.patterns.expr.Var` leaves in ``acc_a``/``acc_b``.  The
    cross-lane part uses the PCU reduction tree; the cross-iteration part
    uses accumulation registers.  With ``carry`` the finalised value is
    combined with the target's current contents (cross-tile accumulation)
    instead of overwriting them.
    """

    def __init__(self, mems: Sequence[Union[Reg, Sram]],
                 values: Sequence[E.ExprLike],
                 combines: Sequence[E.Expr],
                 acc_a: Sequence[E.Var], acc_b: Sequence[E.Var],
                 inits: Sequence,
                 addr: Sequence[E.ExprLike] = (), carry: bool = False):
        self.mems = tuple(mems)
        self.values = tuple(E.wrap(v) for v in values)
        self.combines = tuple(combines)
        self.acc_a = tuple(acc_a)
        self.acc_b = tuple(acc_b)
        self.inits = tuple(inits)
        self.carry = carry
        self.addr = tuple(E.wrap(a) for a in addr)
        width = len(self.mems)
        if not (len(self.values) == len(self.combines) == len(self.acc_a)
                == len(self.acc_b) == len(self.inits) == width):
            raise IRError("ReduceStmt component lists must share a width")
        for mem in self.mems:
            if isinstance(mem, Sram) and len(self.addr) != len(mem.shape):
                raise IRError("SRAM reduce target needs a full address")

    @property
    def width(self) -> int:
        """Number of accumulators."""
        return len(self.mems)

    def exprs(self):
        return self.addr + self.values + self.combines

    @property
    def target(self):
        return self.mems[0]

    @property
    def targets(self):
        """All written memories."""
        return self.mems

    def __repr__(self):
        names = ",".join(m.name for m in self.mems)
        return f"ReduceStmt({names})"


class EmitStmt(Stmt):
    """FlatMap emission: when ``cond`` holds, append ``value`` to a FIFO
    (valid-word coalescing across lanes happens in hardware)."""

    def __init__(self, fifo: FifoDecl, cond: E.ExprLike, value: E.ExprLike):
        self.fifo = fifo
        self.cond = E.wrap(cond)
        self.value = E.wrap(value)

    def exprs(self):
        return (self.cond, self.value)

    @property
    def target(self):
        return self.fifo

    def __repr__(self):
        return f"EmitStmt({self.fifo.name})"


class HashReduceStmt(Stmt):
    """Dense HashReduce: combine ``value`` into ``mem[key]`` on the fly."""

    def __init__(self, mem: Sram, key: E.Expr, value: E.ExprLike,
                 combine: E.Expr, acc_a: E.Var, acc_b: E.Var, init,
                 carry: bool = False):
        self.mem = mem
        #: when True, bins carry their previous contents (cross-tile
        #: accumulation); the lowering emits an explicit init step
        self.carry = carry
        self.key = key
        self.value = E.wrap(value)
        self.combine = combine
        self.acc_a = acc_a
        self.acc_b = acc_b
        self.init = init

    def exprs(self):
        return (self.key, self.value, self.combine)

    @property
    def target(self):
        return self.mem

    def __repr__(self):
        return f"HashReduceStmt({self.mem.name})"


# ---------------------------------------------------------------------------
# Controllers
# ---------------------------------------------------------------------------


class ControllerBase:
    """Common controller state: name, scheme, parent link."""

    def __init__(self, name: str, scheme: Scheme):
        self.name = name
        self.scheme = scheme
        self.parent: Optional["OuterController"] = None

    @property
    def is_leaf(self) -> bool:
        """True for controllers with a dataflow body or transfer."""
        return not isinstance(self, OuterController)

    def ancestors(self):
        """Yield enclosing controllers, innermost first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"


class OuterController(ControllerBase):
    """A controller that only coordinates children (maps to control logic
    in switches).  May carry its own loop counter chain whose indices the
    children reference."""

    def __init__(self, name: str, scheme: Scheme,
                 chain: Optional[CounterChain] = None,
                 stop_when_zero: Optional[Reg] = None,
                 max_trip: Optional[int] = None):
        if not scheme.is_outer:
            raise IRError("outer controller cannot use INNER scheme")
        super().__init__(name, scheme)
        self.chain = chain
        self.children: List[ControllerBase] = []
        self.stop_when_zero = stop_when_zero
        self.max_trip = max_trip

    def add(self, child: ControllerBase) -> ControllerBase:
        """Append a child controller."""
        child.parent = self
        self.children.append(child)
        return child

    def walk(self):
        """Yield this controller and every descendant, preorder."""
        yield self
        for child in self.children:
            if isinstance(child, OuterController):
                yield from child.walk()
            else:
                yield child

    def leaves(self):
        """Yield every leaf controller under this one."""
        for node in self.walk():
            if node.is_leaf:
                yield node


class InnerCompute(ControllerBase):
    """A leaf dataflow pipeline: counter chain + statements (maps to one
    or more PCUs after partitioning).

    ``address_class`` marks scalar bookkeeping bodies — gather address
    generation, accumulator/bin initialisation, loop-index mirroring —
    that the paper executes on PMU address datapaths and control logic
    rather than PCU SIMD pipelines; the mapper gives them no PCU."""

    def __init__(self, name: str, chain: CounterChain,
                 stmts: Sequence[Stmt], address_class: bool = False):
        super().__init__(name, Scheme.INNER)
        self.chain = chain
        self.stmts = list(stmts)
        self.address_class = address_class
        if not self.stmts:
            raise IRError(f"inner controller {name!r} has an empty body")

    def memories_read(self):
        """Distinct on-chip memories read anywhere in the body."""
        mems = []
        for stmt in self.stmts:
            for mem in stmt.memories_read():
                if mem not in mems:
                    mems.append(mem)
        return mems

    def memories_written(self):
        """Distinct memories written by the body."""
        mems = []
        for stmt in self.stmts:
            if stmt.target not in mems:
                mems.append(stmt.target)
        return mems


class TransferBase(ControllerBase):
    """Base for DRAM transfer leaves (map to AGs + coalescing units)."""

    def __init__(self, name: str, dram: DramRef):
        super().__init__(name, Scheme.INNER)
        self.dram = dram


class TileLoad(TransferBase):
    """Dense burst load: DRAM[offset : offset+tile_shape] -> SRAM tile.

    ``offsets`` are symbolic expressions (over enclosing indices) giving
    the tile origin per DRAM dimension.
    """

    def __init__(self, name: str, dram: DramRef, sram: Sram,
                 offsets: Sequence[E.ExprLike],
                 tile_shape: Sequence[int], par: int = 1):
        super().__init__(name, dram)
        self.sram = sram
        self.offsets = tuple(E.wrap(o) for o in offsets)
        self.tile_shape = tuple(int(t) for t in tile_shape)
        self.par = par
        if len(self.offsets) != len(dram.shape):
            raise IRError(f"{name}: offsets rank != DRAM rank")
        if len(self.tile_shape) != len(dram.shape):
            raise IRError(f"{name}: tile rank != DRAM rank")

    def words(self) -> int:
        """Words moved per execution."""
        count = 1
        for dim in self.tile_shape:
            count *= dim
        return count


class TileStore(TransferBase):
    """Dense burst store: SRAM tile -> DRAM[offset : offset+tile_shape]."""

    def __init__(self, name: str, dram: DramRef, sram: Sram,
                 offsets: Sequence[E.ExprLike],
                 tile_shape: Sequence[int], par: int = 1,
                 count: Optional[E.Expr] = None):
        super().__init__(name, dram)
        self.sram = sram
        self.offsets = tuple(E.wrap(o) for o in offsets)
        self.tile_shape = tuple(int(t) for t in tile_shape)
        self.par = par
        self.count = count  # dynamic word count (FlatMap outputs)
        if len(self.offsets) != len(dram.shape):
            raise IRError(f"{name}: offsets rank != DRAM rank")

    def words(self) -> int:
        """Maximum words moved per execution."""
        total = 1
        for dim in self.tile_shape:
            total *= dim
        return total


class Gather(TransferBase):
    """Sparse load: for each address in ``addr_sram`` fetch one DRAM word
    into ``dst_sram`` (coalescing unit merges same-burst addresses).

    ``base`` is a static word offset of the DRAM array; addresses are
    element indices into the flattened DRAM collection.  ``count`` is an
    expression for the number of addresses (or None = full tile).
    """

    def __init__(self, name: str, dram: DramRef, addr_sram: Sram,
                 dst_sram: Sram, count: Optional[E.Expr] = None,
                 par: int = 1):
        super().__init__(name, dram)
        self.addr_sram = addr_sram
        self.dst_sram = dst_sram
        self.count = count
        self.par = par


class StreamStore(TransferBase):
    """Streaming store: drain a FIFO into consecutive DRAM words.

    Used for FlatMap outputs whose length is only known at runtime.  On
    end-of-stream the number of words written is stored into
    ``count_reg`` (and from there to the collection's length cell).
    ``base_offset`` is a symbolic word offset into the DRAM collection.
    """

    def __init__(self, name: str, dram: DramRef, fifo: FifoDecl,
                 count_reg: Reg, base_offset: E.ExprLike = 0,
                 accumulate: bool = False):
        super().__init__(name, dram)
        self.fifo = fifo
        self.count_reg = count_reg
        self.base_offset = E.wrap(base_offset)
        #: when True, count_reg accumulates across activations (the
        #: stream appends after previous tiles' output)
        self.accumulate = accumulate


class Scatter(TransferBase):
    """Sparse store: write ``val_sram[i]`` to DRAM at ``addr_sram[i]``."""

    def __init__(self, name: str, dram: DramRef, addr_sram: Sram,
                 val_sram: Sram, count: Optional[E.Expr] = None,
                 par: int = 1):
        super().__init__(name, dram)
        self.addr_sram = addr_sram
        self.val_sram = val_sram
        self.count = count
        self.par = par


# ---------------------------------------------------------------------------
# Program container
# ---------------------------------------------------------------------------


class DhdlProgram:
    """A complete DHDL design: memory declarations + a controller tree."""

    def __init__(self, name: str):
        self.name = name
        self.drams: List[DramRef] = []
        self.srams: List[Sram] = []
        self.regs: List[Reg] = []
        self.fifos: List[FifoDecl] = []
        self.root = OuterController("root", Scheme.SEQUENTIAL)
        self._names = {"root"}
        #: registers whose final value must be written back to a DRAM
        #: 0-d cell when execution finishes (Fold results, FlatMap counts)
        self.reg_outputs: Dict[str, str] = {}

    # -- declaration helpers ---------------------------------------------------
    def fresh(self, base: str) -> str:
        """A unique controller/memory name derived from ``base``."""
        if base not in self._names:
            self._names.add(base)
            return base
        k = 1
        while f"{base}_{k}" in self._names:
            k += 1
        name = f"{base}_{k}"
        self._names.add(name)
        return name

    def dram(self, array) -> DramRef:
        """Declare (or fetch) the DramRef wrapping a pattern array."""
        for ref in self.drams:
            if ref.array is array:
                return ref
        ref = DramRef(array)
        self.drams.append(ref)
        return ref

    def sram(self, name: str, shape, dtype,
             banking=None, nbuf: int = 1) -> Sram:
        """Declare an on-chip tile."""
        from repro.dhdl.memory import BankingMode
        mem = Sram(self.fresh(name), shape, dtype,
                   banking or BankingMode.STRIDED, nbuf)
        self.srams.append(mem)
        return mem

    def reg(self, name: str, dtype=E.FLOAT32, init=None) -> Reg:
        """Declare a scalar register."""
        cell = Reg(self.fresh(name), dtype, init)
        self.regs.append(cell)
        return cell

    def fifo(self, name: str, dtype=E.FLOAT32, depth: int = 16,
             vector: bool = True) -> FifoDecl:
        """Declare a FIFO."""
        decl = FifoDecl(self.fresh(name), dtype, depth, vector)
        self.fifos.append(decl)
        return decl

    # -- queries ---------------------------------------------------------------
    def controllers(self):
        """All controllers, preorder."""
        yield from self.root.walk()

    def leaves(self):
        """All leaf controllers."""
        yield from self.root.leaves()

    def onchip_words(self) -> int:
        """Total scratchpad words including N-buffers."""
        return sum(s.total_words() for s in self.srams)

    def __repr__(self):
        leaves = sum(1 for _ in self.leaves())
        return (f"DhdlProgram({self.name!r}, leaves={leaves}, "
                f"srams={len(self.srams)})")
