"""Stable serialization of a DHDL program (dict / JSON round-trip).

The serialized form is the durable half of a compiled artifact: the full
controller tree, every memory declaration, the DRAM collections *with
their input data*, and every symbolic expression.  Deserializing yields
a :class:`~repro.dhdl.ir.DhdlProgram` the simulator runs exactly like
the compiler-produced original.

Two properties matter beyond mere round-tripping:

* **Sharing is preserved.**  Expressions form a DAG with identity
  semantics (``Expr.__eq__`` is ``is``); the stage scheduler counts
  shared subtrees once, and the simulator binds :class:`~repro.patterns.
  expr.Idx` / :class:`~repro.patterns.expr.Var` leaves by object
  identity.  Every distinct node is therefore serialized once into a
  numbered table and referenced by index, so the decoded program has the
  same object graph — not just the same syntax.
* **Output is deterministic.**  Encoding traverses only ordered
  containers (declaration lists, child lists, statement lists), never
  sets, so two processes — regardless of hash randomization — produce
  identical dicts for identical programs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.dhdl.control import Scheme
from repro.dhdl.ir import (Counter, CounterChain, DhdlProgram, EmitStmt,
                           Gather, HashReduceStmt, InnerCompute,
                           OuterController, ReduceStmt, Scatter,
                           StreamStore, TileLoad, TileStore, WriteStmt)
from repro.dhdl.memory import (BankingMode, DramRef, FifoDecl, Reg, Sram)
from repro.errors import IRError
from repro.patterns import expr as E
from repro.patterns.collections import Array, Dyn, _np_dtype


def _plain(value) -> Any:
    """Coerce a scalar (possibly a numpy scalar) to a JSON-safe number."""
    if value is None or isinstance(value, bool):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    raise IRError(f"cannot serialize scalar {value!r} "
                  f"({type(value).__name__})")


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


class _Encoder:
    """One serialization pass over a program (shared expression table)."""

    def __init__(self, program: DhdlProgram):
        self.program = program
        self.nodes: List[dict] = []
        self._ids: Dict[int, int] = {}
        self._keep: List[E.Expr] = []      # pin ids for the memo's lifetime
        self._dram_names = {ref.name for ref in program.drams}
        self.aux_arrays: List[Array] = []  # arrays loaded but not in drams

    # -- memories ----------------------------------------------------------------
    def mem_ref(self, mem) -> List:
        """A ``[kind, name]`` reference to a declared memory."""
        if isinstance(mem, (Array, DramRef)):
            name = mem.name
            if name not in self._dram_names and isinstance(mem, Array):
                if all(a.name != name for a in self.aux_arrays):
                    self.aux_arrays.append(mem)
            return ["dram", name]
        if isinstance(mem, Sram):
            return ["sram", mem.name]
        if isinstance(mem, Reg):
            return ["reg", mem.name]
        if isinstance(mem, FifoDecl):
            return ["fifo", mem.name]
        raise IRError(f"cannot reference memory {mem!r}")

    # -- expressions --------------------------------------------------------------
    def expr(self, node: Optional[E.Expr]) -> Optional[int]:
        """Encode one expression DAG; returns its node id (or None)."""
        if node is None:
            return None
        key = id(node)
        if key in self._ids:
            return self._ids[key]
        if isinstance(node, E.Const):
            encoded = {"k": "const", "v": _plain(node.value),
                       "dt": node.dtype}
        elif isinstance(node, E.Idx):
            encoded = {"k": "idx", "name": node.name,
                       "extent": node.extent}
        elif isinstance(node, E.Var):
            encoded = {"k": "var", "name": node.name, "dt": node.dtype}
        elif isinstance(node, E.Load):
            encoded = {"k": "load", "mem": self.mem_ref(node.array),
                       "ix": [self.expr(i) for i in node.indices]}
        elif isinstance(node, E.BinOp):
            encoded = {"k": "bin", "op": node.op,
                       "a": self.expr(node.lhs), "b": self.expr(node.rhs)}
        elif isinstance(node, E.UnOp):
            encoded = {"k": "un", "op": node.op,
                       "a": self.expr(node.operand)}
        elif isinstance(node, E.Select):
            encoded = {"k": "sel", "c": self.expr(node.cond),
                       "t": self.expr(node.if_true),
                       "f": self.expr(node.if_false)}
        else:
            raise IRError(f"cannot serialize expression {node!r}")
        self.nodes.append(encoded)
        self._keep.append(node)
        self._ids[key] = len(self.nodes) - 1
        return self._ids[key]

    def exprs(self, nodes) -> List[int]:
        """Encode a sequence of expressions."""
        return [self.expr(n) for n in nodes]

    # -- counters -----------------------------------------------------------------
    def chain(self, chain: Optional[CounterChain]) -> Optional[dict]:
        if chain is None:
            return None
        return {
            "counters": [{"lo": self.expr(c.lo), "hi": self.expr(c.hi),
                          "step": c.step, "par": c.par}
                         for c in chain.counters],
            "indices": self.exprs(chain.indices),
        }

    # -- statements ---------------------------------------------------------------
    def stmt(self, stmt) -> dict:
        if isinstance(stmt, WriteStmt):
            return {"k": "write", "mem": self.mem_ref(stmt.mem),
                    "addr": self.exprs(stmt.addr),
                    "value": self.expr(stmt.value)}
        if isinstance(stmt, ReduceStmt):
            return {"k": "reduce",
                    "mems": [self.mem_ref(m) for m in stmt.mems],
                    "values": self.exprs(stmt.values),
                    "combines": self.exprs(stmt.combines),
                    "acc_a": self.exprs(stmt.acc_a),
                    "acc_b": self.exprs(stmt.acc_b),
                    "inits": [_plain(v) for v in stmt.inits],
                    "addr": self.exprs(stmt.addr),
                    "carry": stmt.carry}
        if isinstance(stmt, EmitStmt):
            return {"k": "emit", "fifo": stmt.fifo.name,
                    "cond": self.expr(stmt.cond),
                    "value": self.expr(stmt.value)}
        if isinstance(stmt, HashReduceStmt):
            return {"k": "hash", "mem": stmt.mem.name,
                    "key": self.expr(stmt.key),
                    "value": self.expr(stmt.value),
                    "combine": self.expr(stmt.combine),
                    "acc_a": self.expr(stmt.acc_a),
                    "acc_b": self.expr(stmt.acc_b),
                    "init": _plain(stmt.init),
                    "carry": stmt.carry}
        raise IRError(f"cannot serialize statement {stmt!r}")

    # -- controllers --------------------------------------------------------------
    def controller(self, ctrl) -> dict:
        if isinstance(ctrl, OuterController):
            return {"k": "outer", "name": ctrl.name,
                    "scheme": ctrl.scheme.name,
                    "chain": self.chain(ctrl.chain),
                    "stop_when_zero": (ctrl.stop_when_zero.name
                                       if ctrl.stop_when_zero is not None
                                       else None),
                    "max_trip": ctrl.max_trip,
                    "children": [self.controller(c)
                                 for c in ctrl.children]}
        if isinstance(ctrl, InnerCompute):
            return {"k": "inner", "name": ctrl.name,
                    "chain": self.chain(ctrl.chain),
                    "stmts": [self.stmt(s) for s in ctrl.stmts],
                    "address_class": ctrl.address_class}
        if isinstance(ctrl, TileLoad):
            return {"k": "tileload", "name": ctrl.name,
                    "dram": ctrl.dram.name, "sram": ctrl.sram.name,
                    "offsets": self.exprs(ctrl.offsets),
                    "tile_shape": list(ctrl.tile_shape), "par": ctrl.par}
        if isinstance(ctrl, TileStore):
            return {"k": "tilestore", "name": ctrl.name,
                    "dram": ctrl.dram.name, "sram": ctrl.sram.name,
                    "offsets": self.exprs(ctrl.offsets),
                    "tile_shape": list(ctrl.tile_shape), "par": ctrl.par,
                    "count": self.expr(ctrl.count)}
        if isinstance(ctrl, Gather):
            return {"k": "gather", "name": ctrl.name,
                    "dram": ctrl.dram.name,
                    "addr_sram": ctrl.addr_sram.name,
                    "dst_sram": ctrl.dst_sram.name,
                    "count": self.expr(ctrl.count), "par": ctrl.par}
        if isinstance(ctrl, Scatter):
            return {"k": "scatter", "name": ctrl.name,
                    "dram": ctrl.dram.name,
                    "addr_sram": ctrl.addr_sram.name,
                    "val_sram": ctrl.val_sram.name,
                    "count": self.expr(ctrl.count), "par": ctrl.par}
        if isinstance(ctrl, StreamStore):
            return {"k": "streamstore", "name": ctrl.name,
                    "dram": ctrl.dram.name, "fifo": ctrl.fifo.name,
                    "count_reg": ctrl.count_reg.name,
                    "base_offset": self.expr(ctrl.base_offset),
                    "accumulate": ctrl.accumulate}
        raise IRError(f"cannot serialize controller {ctrl!r}")


def _array_to_dict(array: Array) -> dict:
    shape: List[Any] = []
    for dim in array.shape:
        shape.append({"dyn": dim.length_of.name}
                     if isinstance(dim, Dyn) else int(dim))
    data = None
    if array.data is not None:
        data = {"shape": list(array.data.shape),
                "values": [_plain(v) for v in array.data.ravel().tolist()]}
    return {"name": array.name, "shape": shape, "dtype": array.dtype,
            "max_elems": array.max_elems, "offchip": array.offchip,
            "data": data}


def program_to_dict(program: DhdlProgram) -> dict:
    """Serialize a program to a JSON-compatible dict."""
    enc = _Encoder(program)
    srams = [{"name": s.name, "shape": list(s.shape), "dtype": s.dtype,
              "banking": s.banking.value, "nbuf": s.nbuf,
              "bank_stride": s.bank_stride} for s in program.srams]
    regs = [{"name": r.name, "dtype": r.dtype, "init": _plain(r.init),
             "nbuf": r.nbuf} for r in program.regs]
    fifos = [{"name": f.name, "dtype": f.dtype, "depth": f.depth,
              "vector": f.vector} for f in program.fifos]
    root = enc.controller(program.root)
    arrays = [_array_to_dict(ref.array) for ref in program.drams]
    arrays += [_array_to_dict(a) for a in enc.aux_arrays]
    return {
        "name": program.name,
        "arrays": arrays,
        "drams": [ref.name for ref in program.drams],
        "srams": srams,
        "regs": regs,
        "fifos": fifos,
        "exprs": enc.nodes,
        "root": root,
        "reg_outputs": dict(program.reg_outputs),
    }


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


class _Decoder:
    """Rebuilds the object graph from a program dict."""

    def __init__(self, data: dict):
        self.data = data
        self.arrays: Dict[str, Array] = {}
        self.drams: Dict[str, DramRef] = {}
        self.srams: Dict[str, Sram] = {}
        self.regs: Dict[str, Reg] = {}
        self.fifos: Dict[str, FifoDecl] = {}
        self.exprs: List[E.Expr] = []

    def _decode_arrays(self) -> None:
        specs = self.data["arrays"]
        deferred = []
        for spec in specs:
            if any(isinstance(d, dict) for d in spec["shape"]):
                deferred.append(spec)
            else:
                self.arrays[spec["name"]] = self._build_array(spec)
        for spec in deferred:
            self.arrays[spec["name"]] = self._build_array(spec)

    def _build_array(self, spec: dict) -> Array:
        shape: List[Any] = []
        for dim in spec["shape"]:
            if isinstance(dim, dict):
                shape.append(Dyn(self.arrays[dim["dyn"]]))
            else:
                shape.append(int(dim))
        array = Array(spec["name"], tuple(shape), spec["dtype"],
                      max_elems=spec["max_elems"],
                      offchip=spec["offchip"])
        if spec["data"] is not None:
            values = np.asarray(spec["data"]["values"],
                                dtype=_np_dtype(spec["dtype"]))
            array.set_data(values.reshape(spec["data"]["shape"]))
        return array

    def mem(self, ref: List):
        kind, name = ref
        try:
            if kind == "dram":
                return self.arrays[name]
            if kind == "sram":
                return self.srams[name]
            if kind == "reg":
                return self.regs[name]
            if kind == "fifo":
                return self.fifos[name]
        except KeyError:
            raise IRError(f"serialized program references undeclared "
                          f"{kind} {name!r}") from None
        raise IRError(f"unknown memory kind {kind!r}")

    # -- expressions --------------------------------------------------------------
    def _decode_exprs(self) -> None:
        for spec in self.data["exprs"]:
            kind = spec["k"]
            if kind == "const":
                value = spec["v"]
                if spec["dt"] == E.BOOL:
                    value = bool(value)
                elif spec["dt"] == E.INT32:
                    value = int(value)
                else:
                    value = float(value)
                node: E.Expr = E.Const(value, spec["dt"])
            elif kind == "idx":
                node = E.Idx(spec["name"], spec["extent"])
            elif kind == "var":
                node = E.Var(spec["name"], spec["dt"])
            elif kind == "load":
                node = E.Load(self.mem(spec["mem"]),
                              [self.exprs[i] for i in spec["ix"]])
            elif kind == "bin":
                node = E.BinOp(spec["op"], self.exprs[spec["a"]],
                               self.exprs[spec["b"]])
            elif kind == "un":
                node = E.UnOp(spec["op"], self.exprs[spec["a"]])
            elif kind == "sel":
                node = E.Select(self.exprs[spec["c"]],
                                self.exprs[spec["t"]],
                                self.exprs[spec["f"]])
            else:
                raise IRError(f"unknown expression kind {kind!r}")
            self.exprs.append(node)

    def expr(self, idx: Optional[int]) -> Optional[E.Expr]:
        return None if idx is None else self.exprs[idx]

    # -- counters -----------------------------------------------------------------
    def chain(self, spec: Optional[dict]) -> Optional[CounterChain]:
        if spec is None:
            return None
        counters = [Counter(self.expr(c["lo"]), self.expr(c["hi"]),
                            step=c["step"], par=c["par"])
                    for c in spec["counters"]]
        indices = [self.expr(i) for i in spec["indices"]]
        return CounterChain(counters, indices)

    # -- statements ---------------------------------------------------------------
    def stmt(self, spec: dict):
        kind = spec["k"]
        if kind == "write":
            return WriteStmt(self.mem(spec["mem"]),
                             [self.expr(i) for i in spec["addr"]],
                             self.expr(spec["value"]))
        if kind == "reduce":
            return ReduceStmt(
                [self.mem(m) for m in spec["mems"]],
                [self.expr(i) for i in spec["values"]],
                [self.expr(i) for i in spec["combines"]],
                [self.expr(i) for i in spec["acc_a"]],
                [self.expr(i) for i in spec["acc_b"]],
                spec["inits"],
                addr=[self.expr(i) for i in spec["addr"]],
                carry=spec["carry"])
        if kind == "emit":
            return EmitStmt(self.fifos[spec["fifo"]],
                            self.expr(spec["cond"]),
                            self.expr(spec["value"]))
        if kind == "hash":
            return HashReduceStmt(
                self.srams[spec["mem"]], self.expr(spec["key"]),
                self.expr(spec["value"]), self.expr(spec["combine"]),
                self.expr(spec["acc_a"]), self.expr(spec["acc_b"]),
                spec["init"], carry=spec["carry"])
        raise IRError(f"unknown statement kind {kind!r}")

    # -- controllers --------------------------------------------------------------
    def controller(self, spec: dict):
        kind = spec["k"]
        if kind == "outer":
            ctrl = OuterController(
                spec["name"], Scheme[spec["scheme"]],
                chain=self.chain(spec["chain"]),
                stop_when_zero=(self.regs[spec["stop_when_zero"]]
                                if spec["stop_when_zero"] is not None
                                else None),
                max_trip=spec["max_trip"])
            for child in spec["children"]:
                ctrl.add(self.controller(child))
            return ctrl
        if kind == "inner":
            return InnerCompute(spec["name"], self.chain(spec["chain"]),
                                [self.stmt(s) for s in spec["stmts"]],
                                address_class=spec["address_class"])
        if kind == "tileload":
            return TileLoad(spec["name"], self.drams[spec["dram"]],
                            self.srams[spec["sram"]],
                            [self.expr(i) for i in spec["offsets"]],
                            spec["tile_shape"], par=spec["par"])
        if kind == "tilestore":
            return TileStore(spec["name"], self.drams[spec["dram"]],
                             self.srams[spec["sram"]],
                             [self.expr(i) for i in spec["offsets"]],
                             spec["tile_shape"], par=spec["par"],
                             count=self.expr(spec["count"]))
        if kind == "gather":
            return Gather(spec["name"], self.drams[spec["dram"]],
                          self.srams[spec["addr_sram"]],
                          self.srams[spec["dst_sram"]],
                          count=self.expr(spec["count"]),
                          par=spec["par"])
        if kind == "scatter":
            return Scatter(spec["name"], self.drams[spec["dram"]],
                           self.srams[spec["addr_sram"]],
                           self.srams[spec["val_sram"]],
                           count=self.expr(spec["count"]),
                           par=spec["par"])
        if kind == "streamstore":
            return StreamStore(spec["name"], self.drams[spec["dram"]],
                               self.fifos[spec["fifo"]],
                               self.regs[spec["count_reg"]],
                               base_offset=self.expr(spec["base_offset"]),
                               accumulate=spec["accumulate"])
        raise IRError(f"unknown controller kind {kind!r}")

    def decode(self) -> DhdlProgram:
        data = self.data
        program = DhdlProgram(data["name"])
        self._decode_arrays()
        for name in data["drams"]:
            ref = DramRef(self.arrays[name])
            program.drams.append(ref)
            self.drams[name] = ref
        for spec in data["srams"]:
            sram = Sram(spec["name"], spec["shape"], spec["dtype"],
                        BankingMode(spec["banking"]), spec["nbuf"],
                        bank_stride=spec["bank_stride"])
            program.srams.append(sram)
            self.srams[spec["name"]] = sram
        for spec in data["regs"]:
            reg = Reg(spec["name"], spec["dtype"], spec["init"],
                      nbuf=spec["nbuf"])
            program.regs.append(reg)
            self.regs[spec["name"]] = reg
        for spec in data["fifos"]:
            fifo = FifoDecl(spec["name"], spec["dtype"], spec["depth"],
                            spec["vector"])
            program.fifos.append(fifo)
            self.fifos[spec["name"]] = fifo
        self._decode_exprs()
        program.root = self.controller(data["root"])
        program.reg_outputs = dict(data["reg_outputs"])
        names = {program.root.name}
        names.update(self.srams)
        names.update(self.regs)
        names.update(self.fifos)
        names.update(ctrl.name for ctrl in program.root.walk())
        program._names = names
        return program


def program_from_dict(data: dict) -> DhdlProgram:
    """Rebuild a :class:`DhdlProgram` from :func:`program_to_dict` output."""
    return _Decoder(data).decode()
