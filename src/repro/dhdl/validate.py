"""Structural validation of DHDL programs.

Run after lowering and before mapping; raises
:class:`~repro.errors.IRError` with a precise message on the first
violation.  Checks:

* controller tree shape (outer schemes, non-empty children, leaf bodies);
* every on-chip memory read somewhere is written somewhere;
* inner bodies only read on-chip memories (DRAM goes through transfers);
* counter chains are well-formed and referenced indices are in scope;
* streaming children communicate only through FIFOs.
"""

from __future__ import annotations

from repro.dhdl.control import Scheme
from repro.dhdl.ir import (DhdlProgram, Gather, InnerCompute,
                           OuterController, Scatter, TileLoad, TileStore)
from repro.dhdl.memory import DramRef, FifoDecl, Reg, Sram
from repro.errors import IRError
from repro.patterns import expr as E


def _in_scope_indices(ctrl):
    """Indices visible to a controller: its own chain + ancestors'."""
    scope = set()
    node = ctrl
    while node is not None:
        chain = getattr(node, "chain", None)
        if chain is not None:
            scope.update(chain.indices)
        node = node.parent
    return scope


def _check_expr_scope(root, scope, where: str):
    for node in E.postorder(root):
        if isinstance(node, E.Idx) and node not in scope:
            raise IRError(f"{where}: index {node.name!r} is out of scope")
        if isinstance(node, E.Load) and isinstance(node.array, DramRef):
            raise IRError(
                f"{where}: direct DRAM read of {node.array.name!r}; "
                f"DRAM is only reachable through transfer nodes")


def _writers_map(program: DhdlProgram):
    writers = {}
    for leaf in program.leaves():
        if isinstance(leaf, InnerCompute):
            for stmt in leaf.stmts:
                for target in getattr(stmt, "targets", (stmt.target,)):
                    writers.setdefault(target, []).append(leaf)
        elif isinstance(leaf, TileLoad):
            writers.setdefault(leaf.sram, []).append(leaf)
        elif isinstance(leaf, Gather):
            writers.setdefault(leaf.dst_sram, []).append(leaf)
    return writers


def validate(program: DhdlProgram) -> None:
    """Validate the whole program; raise IRError on the first problem."""
    writers = _writers_map(program)

    for ctrl in program.controllers():
        if isinstance(ctrl, OuterController):
            if not ctrl.children:
                raise IRError(f"outer controller {ctrl.name!r} has no "
                              f"children")
            if ctrl.scheme is Scheme.STREAMING:
                _check_streaming(ctrl)
            continue
        scope = _in_scope_indices(ctrl)
        if isinstance(ctrl, InnerCompute):
            _check_inner(ctrl, scope, writers)
        elif isinstance(ctrl, (TileLoad, TileStore)):
            for off in ctrl.offsets:
                _check_expr_scope(off, scope, f"{ctrl.name} offset")
            _check_tile_bounds(ctrl)
        elif isinstance(ctrl, (Gather, Scatter)):
            pass  # address/value tiles validated via writer check below

    # every on-chip memory read must have a writer
    for leaf in program.leaves():
        if isinstance(leaf, InnerCompute):
            for mem in leaf.memories_read():
                if isinstance(mem, Reg) and mem.init is not None:
                    continue
                if mem not in writers:
                    raise IRError(
                        f"{leaf.name!r} reads {mem.name!r} which nothing "
                        f"writes")
        elif isinstance(leaf, TileStore):
            if leaf.sram not in writers:
                raise IRError(
                    f"{leaf.name!r} stores {leaf.sram.name!r} which "
                    f"nothing writes")
        elif isinstance(leaf, (Gather, Scatter)):
            if leaf.addr_sram not in writers:
                raise IRError(
                    f"{leaf.name!r} uses addresses {leaf.addr_sram.name!r} "
                    f"which nothing writes")
            if isinstance(leaf, Scatter) and leaf.val_sram not in writers:
                raise IRError(
                    f"{leaf.name!r} scatters values {leaf.val_sram.name!r} "
                    f"which nothing writes")


def _check_inner(ctrl: InnerCompute, scope, writers):
    chain = ctrl.chain
    if chain.depth == 0:
        raise IRError(f"{ctrl.name!r} has an empty counter chain")
    for counter in chain.counters:
        _check_expr_scope(counter.lo, scope, f"{ctrl.name} counter lo")
        _check_expr_scope(counter.hi, scope, f"{ctrl.name} counter hi")
    for stmt in ctrl.stmts:
        for root in stmt.exprs():
            _check_expr_scope(root, scope, f"{ctrl.name} body")


def _check_tile_bounds(ctrl):
    for tile_dim, dram_dim in zip(ctrl.tile_shape, ctrl.dram.shape):
        if isinstance(dram_dim, int) and tile_dim > dram_dim:
            raise IRError(
                f"{ctrl.name!r}: tile extent {tile_dim} exceeds DRAM "
                f"extent {dram_dim}")


def _check_streaming(ctrl: OuterController):
    """Streaming siblings may only exchange data through FIFOs."""
    produced = {}
    for child in ctrl.children:
        if isinstance(child, InnerCompute):
            for stmt in child.stmts:
                produced[stmt.target] = child
    for child in ctrl.children:
        if not isinstance(child, InnerCompute):
            continue
        for mem in child.memories_read():
            owner = produced.get(mem)
            if owner is not None and owner is not child and not isinstance(
                    mem, FifoDecl):
                raise IRError(
                    f"streaming children {owner.name!r} -> {child.name!r} "
                    f"must communicate through FIFOs, not "
                    f"{type(mem).__name__} {mem.name!r}")
