"""Virtual-unit requirement summaries.

The compiler's virtual allocation reduces an application to a list of
*virtual unit requirements*: the stages, registers, IO and lanes each
virtual PCU actually needs, and the capacity each virtual PMU actually
needs.  The Table 6 homogenization study and the Figure 7 sizing sweeps
are computed over these summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class VirtualPcuReq:
    """What one virtual PCU needs from the hardware."""

    stages: int
    live_regs: int = 2          # max live values per lane at any stage
    scalar_in: int = 1
    scalar_out: int = 1
    vector_in: int = 1
    vector_out: int = 1
    lanes_used: int = 16        # SIMD width actually exercised

    def clamp(self) -> "VirtualPcuReq":
        """Normalize degenerate requirements to hardware minimums."""
        return VirtualPcuReq(
            stages=max(1, self.stages),
            live_regs=max(2, self.live_regs),
            scalar_in=max(1, self.scalar_in),
            scalar_out=max(1, self.scalar_out),
            vector_in=max(1, self.vector_in),
            vector_out=max(1, self.vector_out),
            lanes_used=max(1, self.lanes_used),
        )


@dataclass(frozen=True)
class VirtualPmuReq:
    """What one virtual PMU (logical scratchpad) needs."""

    kb: float                   # capacity including N-buffering
    banks: int = 16             # parallel access streams needed
    scalar_in: int = 2
    vector_in: int = 1
    vector_out: int = 1


@dataclass
class DesignRequirements:
    """All virtual units of one application, pre-partitioning."""

    name: str
    pcus: List[VirtualPcuReq] = field(default_factory=list)
    pmus: List[VirtualPmuReq] = field(default_factory=list)

    def max_pcu(self) -> VirtualPcuReq:
        """Element-wise maximum PCU requirement (homogenization target)."""
        if not self.pcus:
            return VirtualPcuReq(stages=1).clamp()
        return VirtualPcuReq(
            stages=max(r.stages for r in self.pcus),
            live_regs=max(r.live_regs for r in self.pcus),
            scalar_in=max(r.scalar_in for r in self.pcus),
            scalar_out=max(r.scalar_out for r in self.pcus),
            vector_in=max(r.vector_in for r in self.pcus),
            vector_out=max(r.vector_out for r in self.pcus),
            lanes_used=max(r.lanes_used for r in self.pcus),
        ).clamp()

    def max_pmu_kb(self) -> float:
        """Largest scratchpad requirement (homogenization target)."""
        return max((r.kb for r in self.pmus), default=1.0)
