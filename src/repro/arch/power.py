"""Power model, calibrated to the paper's reported numbers.

The paper profiles single-unit power with PrimeTime on RTL traces and
reports (a) a 49 W maximum chip power at 1 GHz and (b) per-benchmark
totals between 10.7 W and 42.6 W (Table 7) where *unused units are clock
gated* and contribute only static power.

We model::

    P = P_static + sum_over_unit_types(active_count * P_unit * activity)

with per-unit dynamic powers calibrated so a fully active chip draws
~49 W.  ``activity`` in [0, 1] is the fraction of cycles a unit does work,
taken from simulator statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.arch.params import DEFAULT, PlasticineParams

#: Static (leakage + clock-tree) power for the whole 113 mm^2 chip, W.
STATIC_W = 4.4

#: Dynamic power of one fully active unit at 1 GHz, W.
PCU_W = 0.37
PMU_W = 0.24
AG_W = 0.055
COALESCER_W = 0.26
#: per active switch site (averaged over the three networks)
SWITCH_W = 0.018


def max_chip_power(params: PlasticineParams = DEFAULT) -> float:
    """Worst-case power: everything switching every cycle (~49 W)."""
    switches = (params.grid_cols + 1) * (params.grid_rows + 1)
    return (STATIC_W
            + params.num_pcus * PCU_W
            + params.num_pmus * PMU_W
            + params.num_ags * AG_W
            + params.num_coalescing_units * COALESCER_W
            + switches * SWITCH_W) * params.clock_ghz


@dataclass(frozen=True)
class UnitActivity:
    """Per-unit-type activity summary from a simulation or estimate.

    ``*_used`` is the number of powered (configured) units; ``*_activity``
    is their average busy fraction.  Unused units are clock gated.
    """

    pcus_used: int = 0
    pcu_activity: float = 0.0
    pmus_used: int = 0
    pmu_activity: float = 0.0
    ags_used: int = 0
    ag_activity: float = 0.0
    coalescers_used: int = 0
    coalescer_activity: float = 0.0
    switches_used: int = 0
    switch_activity: float = 0.0


def chip_power(activity: UnitActivity,
               params: PlasticineParams = DEFAULT) -> float:
    """Chip power in W for a given activity profile."""
    dynamic = (activity.pcus_used * PCU_W * activity.pcu_activity
               + activity.pmus_used * PMU_W * activity.pmu_activity
               + activity.ags_used * AG_W * activity.ag_activity
               + (activity.coalescers_used * COALESCER_W
                  * activity.coalescer_activity)
               + (activity.switches_used * SWITCH_W
                  * activity.switch_activity))
    return (STATIC_W + dynamic) * params.clock_ghz


def power_breakdown(activity: UnitActivity,
                    params: PlasticineParams = DEFAULT) -> Dict[str, float]:
    """Per-component power contributions in W."""
    return {
        "static": STATIC_W,
        "pcu": activity.pcus_used * PCU_W * activity.pcu_activity,
        "pmu": activity.pmus_used * PMU_W * activity.pmu_activity,
        "ag": activity.ags_used * AG_W * activity.ag_activity,
        "coalescer": (activity.coalescers_used * COALESCER_W
                      * activity.coalescer_activity),
        "switch": (activity.switches_used * SWITCH_W
                   * activity.switch_activity),
    }
