"""Workload profiles: the architecture-independent facts about one
benchmark execution that the FPGA and Plasticine performance models
consume.

A profile counts work (flops, bytes, random accesses) and records the
exploitable structure (inner parallelism, pipeline depth, sequential
iterations).  Profiles are produced either analytically by the app
definitions (paper-scale datasets) or measured by the compiler/simulator
(scaled datasets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class WorkloadProfile:
    """Work and structure summary of one benchmark run."""

    name: str
    #: total scalar compute operations (FLOPs for float apps, int ops else)
    flops: float = 0.0
    #: dense DRAM traffic in bytes (tile loads + stores, streaming)
    stream_bytes: float = 0.0
    #: random (gather/scatter) DRAM accesses, each one 4-byte word
    random_accesses: float = 0.0
    #: exploitable inner-loop (SIMD) parallelism per sequential step
    inner_parallelism: int = 16
    #: exploitable outer parallelism (independent tiles / units)
    outer_parallelism: int = 1
    #: compute pipeline depth in ops per element (deep for BlackScholes)
    pipeline_ops: int = 1
    #: inherently sequential outer iterations (loop-carried dependence)
    sequential_iters: int = 1
    #: on-chip working set in 4-byte words (tile residency)
    working_set_words: float = 0.0
    #: fraction of compute that is floating point (vs int/control)
    fp_fraction: float = 1.0
    #: free-form notes carried into reports
    notes: str = ""
    # -- per-benchmark modelling hints, justified by the paper's own
    # -- analysis of each benchmark (Section 4.5) -------------------------
    #: FPGA-exploitable FLOPs/cycle when BRAM banking/ports cap it below
    #: the resource-derived value (None = derive from resources)
    fpga_parallelism: Optional[float] = None
    #: DRAM traffic amplification on the FPGA from undersized tiles
    fpga_traffic_factor: float = 1.0
    #: fraction of FPGA memory time hidden under compute (limited
    #: double-buffering ability vs Plasticine's N-buffered scratchpads)
    fpga_overlap: float = 0.5
    #: Plasticine-exploitable FLOPs/cycle override (None = inner x
    #: pipeline x outer)
    plasticine_parallelism: Optional[float] = None
    #: useful words per coalesced burst for this workload's access
    #: locality (None = model default)
    plasticine_coalesce_words: Optional[float] = None

    @property
    def total_bytes(self) -> float:
        """All DRAM traffic in bytes, counting each random access as one
        4-byte word (the useful payload)."""
        return self.stream_bytes + 4.0 * self.random_accesses

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte (roofline x-axis)."""
        bytes_total = self.total_bytes
        return self.flops / bytes_total if bytes_total else float("inf")
