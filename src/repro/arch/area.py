"""Area model, calibrated against Table 5 of the paper (28 nm, mm^2).

The paper obtains component areas from Synopsys DC synthesis; we encode its
published per-component results and scale them parametrically for the
design-space sweeps of Figure 7 and the homogenization study of Table 6.

Calibration anchors (Table 5):

==================  ======  =========================================
component             mm^2  parametric form
==================  ======  =========================================
PCU FUs              0.622  ``FU_MM2 * lanes * stages``
PCU registers        0.144  ``REG_MM2 * lanes * stages * regs``
PCU FIFOs            0.082  ``VFIFO * vin * lanes/16 + SFIFO * sin``
PCU control          0.001  constant
PCU total            0.849
PMU scratchpad       0.477  ``SRAM_MM2_PER_KB * banks * bank_kb``
PMU FIFOs            0.024  ``PMU_VFIFO * vin * banks/16 + SFIFO * sin``
PMU registers        0.023  ``PMU_REG_MM2 * stages * regs``
PMU FUs              0.007  ``PMU_FU_MM2 * stages``
PMU control          0.001  constant
PMU total            0.532
interconnect        18.796  ``SWITCH_MM2 * (cols+1)*(rows+1) * lanes/16``
memory controller    5.616  ``AG_MM2 * num_ags + CU_MM2 * num_cus``
chip total         112.796
==================  ======  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.arch.params import (DEFAULT, PcuParams, PlasticineParams,
                               PmuParams)

# -- calibrated coefficients (mm^2) -----------------------------------------
FU_MM2 = 0.622 / (16 * 6)
REG_MM2 = 0.144 / (16 * 6 * 6)
VFIFO_MM2 = 0.025                 # one 16-lane vector input FIFO
SFIFO_MM2 = (0.082 - 3 * 0.025) / 6   # one scalar input FIFO
PCU_CONTROL_MM2 = 0.001

SRAM_MM2_PER_KB = 0.477 / 256
PMU_VFIFO_MM2 = 0.007             # shallower vector FIFOs than PCU
PMU_SFIFO_MM2 = (0.024 - 3 * 0.007) / 4
PMU_REG_MM2 = 0.023 / (4 * 6)
PMU_FU_MM2 = 0.007 / 4            # scalar ALU stage
PMU_CONTROL_MM2 = 0.001

SWITCH_MM2 = 18.796 / (17 * 9)    # one switch site, all three networks
AG_MM2 = 0.12
CU_MM2 = (5.616 - 34 * AG_MM2) / 4


def pcu_area(pcu: PcuParams) -> float:
    """Area of one PCU in mm^2 for arbitrary Table 3 parameters."""
    lane_scale = pcu.lanes / 16.0
    return (PCU_CONTROL_MM2
            + FU_MM2 * pcu.lanes * pcu.stages
            + REG_MM2 * pcu.lanes * pcu.stages * pcu.regs_per_stage
            + VFIFO_MM2 * pcu.vector_in * lane_scale
            + SFIFO_MM2 * pcu.scalar_in)


def pcu_breakdown(pcu: PcuParams) -> Dict[str, float]:
    """Per-component PCU area, keyed like Table 5."""
    lane_scale = pcu.lanes / 16.0
    return {
        "FUs": FU_MM2 * pcu.lanes * pcu.stages,
        "Registers": REG_MM2 * pcu.lanes * pcu.stages * pcu.regs_per_stage,
        "FIFOs": (VFIFO_MM2 * pcu.vector_in * lane_scale
                  + SFIFO_MM2 * pcu.scalar_in),
        "Control": PCU_CONTROL_MM2,
    }


def pmu_area(pmu: PmuParams) -> float:
    """Area of one PMU in mm^2 for arbitrary Table 3 parameters."""
    bank_scale = pmu.banks / 16.0
    return (PMU_CONTROL_MM2
            + SRAM_MM2_PER_KB * pmu.banks * pmu.bank_kb
            + PMU_VFIFO_MM2 * pmu.vector_in * bank_scale
            + PMU_SFIFO_MM2 * pmu.scalar_in
            + PMU_REG_MM2 * pmu.stages * pmu.regs_per_stage
            + PMU_FU_MM2 * pmu.stages)


def pmu_breakdown(pmu: PmuParams) -> Dict[str, float]:
    """Per-component PMU area, keyed like Table 5."""
    bank_scale = pmu.banks / 16.0
    return {
        "Scratchpad": SRAM_MM2_PER_KB * pmu.banks * pmu.bank_kb,
        "FIFOs": (PMU_VFIFO_MM2 * pmu.vector_in * bank_scale
                  + PMU_SFIFO_MM2 * pmu.scalar_in),
        "Registers": PMU_REG_MM2 * pmu.stages * pmu.regs_per_stage,
        "FUs": PMU_FU_MM2 * pmu.stages,
        "Control": PMU_CONTROL_MM2,
    }


def interconnect_area(params: PlasticineParams) -> float:
    """Static interconnect area (all three networks)."""
    switches = (params.grid_cols + 1) * (params.grid_rows + 1)
    return SWITCH_MM2 * switches * (params.pcu.lanes / 16.0)


def memory_controller_area(params: PlasticineParams) -> float:
    """AGs plus coalescing units."""
    return AG_MM2 * params.num_ags + CU_MM2 * params.num_coalescing_units


@dataclass(frozen=True)
class ChipArea:
    """Chip-level area roll-up (regenerates Table 5)."""

    pcu_each: float
    pmu_each: float
    num_pcus: int
    num_pmus: int
    interconnect: float
    memory_controller: float

    @property
    def pcus(self) -> float:
        """All-PCU area."""
        return self.pcu_each * self.num_pcus

    @property
    def pmus(self) -> float:
        """All-PMU area."""
        return self.pmu_each * self.num_pmus

    @property
    def total(self) -> float:
        """Chip total in mm^2."""
        return (self.pcus + self.pmus + self.interconnect
                + self.memory_controller)

    def percentages(self) -> Dict[str, float]:
        """Share of chip area per top-level component (Table 5 col 3)."""
        total = self.total
        return {
            "PCU": 100.0 * self.pcus / total,
            "PMU": 100.0 * self.pmus / total,
            "Interconnect": 100.0 * self.interconnect / total,
            "MemoryController": 100.0 * self.memory_controller / total,
        }


def chip_area(params: PlasticineParams = DEFAULT) -> ChipArea:
    """Roll up chip area for an architecture instance."""
    return ChipArea(
        pcu_each=pcu_area(params.pcu),
        pmu_each=pmu_area(params.pmu),
        num_pcus=params.num_pcus,
        num_pmus=params.num_pmus,
        interconnect=interconnect_area(params),
        memory_controller=memory_controller_area(params),
    )
