"""Analytical model of the paper's FPGA baseline (Section 4.4).

The baseline is an Altera Stratix V (28 nm) on a Maxeler-style platform:
150 MHz fabric clock, 400 MHz memory-controller clock, 48 GB of DDR3-800
across 6 channels *ganged into one wide channel* with 37.5 GB/s peak.

Real hardware being unavailable, we model the three effects that determine
the paper's FPGA-side numbers:

1. **Clock and compute capacity** — parallelism is capped by DSP blocks,
   ALMs, and (dominantly, per the paper) by the number of banked,
   multi-ported BRAM buffers the design can instantiate.
2. **Ganged memory channels** — dense streams achieve near-peak bandwidth,
   but random accesses waste a full 384-byte ganged burst per useful word
   and are further capped by soft-logic scatter/gather engines.
3. **Sequential latency** — loop-carried outer iterations pay full
   pipeline flushes at the slow fabric clock.

The constants are documented estimates for a Stratix V GS D8-class part;
they are calibration knobs, not measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.workload import WorkloadProfile


@dataclass(frozen=True)
class FpgaParams:
    """Stratix V baseline parameters."""

    clock_mhz: float = 150.0
    #: peak DRAM bandwidth with all channels ganged (GB/s)
    peak_gbps: float = 37.5
    #: dense-stream efficiency of the ganged controller
    stream_efficiency: float = 0.85
    #: bytes fetched per random word (one ganged burst: 6 ch x 64 B)
    ganged_burst_bytes: int = 384
    #: maximum outstanding random requests from soft scatter/gather logic
    random_outstanding: int = 16
    #: DRAM round-trip latency for a random access (ns)
    random_latency_ns: float = 120.0
    #: DSP blocks (27x18 multipliers); one FP32 multiply each
    dsp_blocks: int = 1963
    #: fraction of DSPs usable after timing closure at 150 MHz
    dsp_usable: float = 0.55
    #: FP32 adders implementable in ALMs alongside the rest of the design
    alm_adders: int = 512
    #: total M20K BRAM capacity in 4-byte words (50 Mb)
    bram_words: int = 1_638_400
    #: maximum independently banked/buffered tiles (routing/port limit)
    bram_buffers: int = 96

    @property
    def flops_per_cycle(self) -> float:
        """Peak usable FP ops per fabric cycle."""
        return self.dsp_usable * self.dsp_blocks * 0.5 + self.alm_adders * 0.5

    @property
    def random_gbps(self) -> float:
        """Effective random-access bandwidth (GB/s of useful words).

        Limited both by burst waste (4 useful bytes per ganged burst) and
        by latency x outstanding requests in soft logic.
        """
        burst_limited = self.peak_gbps * 4.0 / self.ganged_burst_bytes
        latency_limited = (self.random_outstanding * 4.0
                           / self.random_latency_ns)  # bytes per ns = GB/s
        return min(burst_limited, latency_limited)


DEFAULT_FPGA = FpgaParams()


def fpga_runtime_s(profile: WorkloadProfile,
                   fpga: FpgaParams = DEFAULT_FPGA) -> float:
    """Estimated FPGA runtime in seconds for one workload profile.

    Three per-benchmark hints from the profile shape the estimate, each
    corresponding to an effect Section 4.5 of the paper attributes to
    the FPGA: ``fpga_parallelism`` (BRAM banking/ports cap exploitable
    parallelism), ``fpga_traffic_factor`` (undersized tiles re-stream
    data), and ``fpga_overlap`` (limited double buffering leaves memory
    time exposed).
    """
    clock_hz = fpga.clock_mhz * 1e6

    # compute: parallelism capped by DSP/adder capacity and by how many
    # banked buffers the design can feed (the paper's recurring limiter)
    if profile.fpga_parallelism is not None:
        per_cycle = profile.fpga_parallelism
    else:
        buffer_limited = fpga.bram_buffers  # ~1 lane per banked buffer
        per_cycle = min(
            fpga.flops_per_cycle,
            profile.inner_parallelism * profile.outer_parallelism,
            buffer_limited * profile.pipeline_ops)
    per_cycle = max(per_cycle, 1.0)
    compute_s = profile.flops / (per_cycle * clock_hz)

    # memory: dense streams near peak (amplified by tile refetches),
    # random through the ganged penalty
    stream_s = (profile.stream_bytes * profile.fpga_traffic_factor
                / (fpga.peak_gbps * 1e9 * fpga.stream_efficiency))
    random_s = (4.0 * profile.random_accesses) / (fpga.random_gbps * 1e9)
    memory_s = stream_s + random_s

    # limited overlap between compute and DRAM communication
    overlapped = max(compute_s, memory_s) + (
        1.0 - profile.fpga_overlap) * min(compute_s, memory_s)

    # sequential latency: one pipeline flush per dependent outer iteration
    flush_cycles = profile.pipeline_ops + 25  # control + drain overhead
    seq_s = profile.sequential_iters * flush_cycles / clock_hz

    return overlapped + seq_s


def fpga_power_w(profile: WorkloadProfile,
                 fpga: FpgaParams = DEFAULT_FPGA) -> float:
    """Estimated FPGA board power in W.

    The paper's PowerPlay estimates span 21.5-34.4 W across benchmarks;
    we model a 20 W base (static + DRAM + controller) plus dynamic power
    proportional to the exercised compute parallelism.
    """
    base_w = 20.0
    per_cycle = min(fpga.flops_per_cycle,
                    profile.inner_parallelism * profile.outer_parallelism)
    dynamic_w = 14.0 * (per_cycle / fpga.flops_per_cycle)
    return base_w + dynamic_w
