"""ASIC-equivalent area estimation and the Table 6 homogenization ladder.

Table 6 of the paper estimates the area cost of five successive
generalization steps, starting from a benchmark-specific ASIC:

a. reconfigurable but *heterogeneous* PCUs/PMUs (each unit exactly sized);
b. homogeneous PMUs within the benchmark (all sized to the largest);
c. homogeneous PCUs within the benchmark;
d. PMUs generalized across applications (256 KB each);
e. PCUs generalized across applications (final Table 3 parameters).

We reproduce the ladder over the compiler's virtual-unit requirements.
The ASIC baseline prices exactly the compute and memory a benchmark needs,
with fixed-function datapaths (no configuration muxes/registers, cheaper
FUs, exactly-sized SRAMs, hardwired memory controllers).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.arch.area import (AG_MM2, CU_MM2, FU_MM2, REG_MM2, SFIFO_MM2,
                             SRAM_MM2_PER_KB, VFIFO_MM2, pcu_area)
from repro.arch.params import PcuParams, PmuParams, DEFAULT
from repro.arch.requirements import (DesignRequirements, VirtualPcuReq,
                                     VirtualPmuReq)

#: fixed-function datapath cost relative to a reconfigurable FU
ASIC_FU_FACTOR = 0.40
#: exactly-sized SRAM macro cost relative to the configurable scratchpad
ASIC_MEM_FACTOR = 0.72
#: hardwired DMA engines vs configurable AGs + coalescers
ASIC_MC_MM2 = 0.9
#: reconfigurable memory controller (shared by all ladder steps)
RECONF_MC_MM2 = 2.4


def asic_area(reqs: DesignRequirements) -> float:
    """Benchmark-specific chip area with fixed-function everything."""
    compute = sum(
        (FU_MM2 * ASIC_FU_FACTOR * r.stages * r.lanes_used
         + REG_MM2 * r.stages * r.lanes_used * max(2, r.live_regs))
        for r in (v.clamp() for v in reqs.pcus))
    memory = sum(SRAM_MM2_PER_KB * ASIC_MEM_FACTOR * r.kb
                 for r in reqs.pmus)
    return compute + memory + ASIC_MC_MM2


def _reconf_pcu_area(req: VirtualPcuReq) -> float:
    """A reconfigurable PCU exactly shaped to one virtual requirement.

    Heterogeneous units (Table 6 steps a/b) may take *any* shape — even a
    single lane for sequential logic — so this bypasses the Table 3 range
    validation and prices the requirement directly.
    """
    req = req.clamp()
    lanes = req.lanes_used
    stages = req.stages
    regs = max(2, req.live_regs)
    lane_scale = lanes / 16.0
    return (0.001
            + FU_MM2 * lanes * stages
            + REG_MM2 * lanes * stages * regs
            + VFIFO_MM2 * req.vector_in * lane_scale
            + SFIFO_MM2 * req.scalar_in)


def _reconf_pmu_area(kb: float, banks: int = 16) -> float:
    """A reconfigurable PMU with a given scratchpad capacity."""
    return (0.001
            + SRAM_MM2_PER_KB * max(1.0, kb)
            + 0.007 * 3 * (banks / 16.0)   # vector FIFOs
            + 0.0007 * 4                    # scalar FIFOs
            + 0.023 + 0.007)                # address datapath regs + ALUs


def ladder(reqs: DesignRequirements,
           final_pcu: PcuParams = DEFAULT.pcu,
           final_pmu: PmuParams = DEFAULT.pmu) -> Dict[str, float]:
    """Cumulative area of each Table 6 step, in mm^2.

    Keys: ``asic``, ``a`` .. ``e``.  Steps c and e must account for
    *splitting*: a virtual PCU needing more stages than the homogeneous
    shape provides occupies multiple physical PCUs, and sequential
    (1-lane) logic still occupies full 16-lane units.
    """
    areas = {"asic": asic_area(reqs)}

    # a. heterogeneous reconfigurable units
    areas["a"] = (sum(_reconf_pcu_area(r) for r in reqs.pcus)
                  + sum(_reconf_pmu_area(r.kb, r.banks) for r in reqs.pmus)
                  + RECONF_MC_MM2)

    # b. homogeneous PMUs within the benchmark
    pmu_kb = reqs.max_pmu_kb()
    homo_pmu = len(reqs.pmus) * _reconf_pmu_area(pmu_kb)
    areas["b"] = (sum(_reconf_pcu_area(r) for r in reqs.pcus)
                  + homo_pmu + RECONF_MC_MM2)

    # c. homogeneous PCUs within the benchmark (fixed 16 lanes; virtual
    #    units split across as many physical units as their stages need)
    max_req = reqs.max_pcu()
    shape_stages = min(16, max_req.stages)
    homo_shape = replace(max_req, lanes_used=16, stages=shape_stages)
    per_pcu = _reconf_pcu_area(homo_shape)
    pcu_count = sum(-(-r.clamp().stages // shape_stages) for r in reqs.pcus)
    areas["c"] = pcu_count * per_pcu + homo_pmu + RECONF_MC_MM2

    # d. PMUs generalized across applications
    general_pmu = _reconf_pmu_area(final_pmu.scratch_kb, final_pmu.banks)
    pmu_count = sum(max(1, -(-r.kb // final_pmu.scratch_kb))
                    for r in reqs.pmus)
    areas["d"] = (pcu_count * per_pcu + pmu_count * general_pmu
                  + RECONF_MC_MM2)

    # e. PCUs generalized across applications (final Table 3 shape)
    final_area = pcu_area(final_pcu)
    final_count = sum(-(-r.clamp().stages // final_pcu.stages)
                      for r in reqs.pcus)
    areas["e"] = (final_count * final_area + pmu_count * general_pmu
                  + RECONF_MC_MM2)
    return areas


def overhead_table(reqs: DesignRequirements) -> Dict[str, float]:
    """Successive and cumulative overheads as printed in Table 6.

    Returns ``{step: successive_ratio, step_cum: cumulative_ratio}`` for
    steps a-e, all relative to the ASIC baseline like the paper.
    """
    areas = ladder(reqs)
    result = {}
    prev = areas["asic"]
    for step in ("a", "b", "c", "d", "e"):
        result[step] = areas[step] / prev
        result[f"{step}_cum"] = areas[step] / areas["asic"]
        prev = areas[step]
    return result
