"""Architecture parameters, area/power models, and baselines."""

from repro.arch.area import (ChipArea, chip_area, interconnect_area,
                             memory_controller_area, pcu_area,
                             pcu_breakdown, pmu_area, pmu_breakdown)
from repro.arch.asic import asic_area, ladder, overhead_table
from repro.arch.fpga import (DEFAULT_FPGA, FpgaParams, fpga_power_w,
                             fpga_runtime_s)
from repro.arch.params import (DEFAULT, DESIGN_SPACE, DramParams, PcuParams,
                               PlasticineParams, PmuParams)
from repro.arch.power import (UnitActivity, chip_power, max_chip_power,
                              power_breakdown)
from repro.arch.requirements import (DesignRequirements, VirtualPcuReq,
                                     VirtualPmuReq)
from repro.arch.workload import WorkloadProfile

__all__ = [
    "ChipArea", "chip_area", "interconnect_area", "memory_controller_area",
    "pcu_area", "pcu_breakdown", "pmu_area", "pmu_breakdown",
    "asic_area", "ladder", "overhead_table",
    "DEFAULT_FPGA", "FpgaParams", "fpga_power_w", "fpga_runtime_s",
    "DEFAULT", "DESIGN_SPACE", "DramParams", "PcuParams",
    "PlasticineParams", "PmuParams",
    "UnitActivity", "chip_power", "max_chip_power", "power_breakdown",
    "DesignRequirements", "VirtualPcuReq", "VirtualPmuReq",
    "WorkloadProfile",
]
