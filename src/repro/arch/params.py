"""Architecture parameters and the Table 3 design space.

The Plasticine instance evaluated in the paper (and used as the default
throughout this library) is a 16x8 checkerboard of 64 PCUs and 64 PMUs at
1 GHz in 28 nm, with 4 DDR3-1600 channels (51.2 GB/s peak), 34 address
generators and 4 coalescing units.  Peak FP32 throughput is
64 PCUs x 16 lanes x 6 stages x 2 (FMA counted as paper does) ~ 12.3
TFLOPS, and total scratchpad capacity is 64 x 256 KB = 16 MB.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.errors import ArchError

#: Table 3 sweep ranges, by parameter name.
DESIGN_SPACE: Dict[str, Tuple[int, ...]] = {
    "pcu_lanes": (4, 8, 16, 32),
    "pcu_stages": tuple(range(1, 17)),
    "pcu_regs_per_stage": tuple(range(2, 17)),
    "pcu_scalar_in": tuple(range(1, 17)),
    "pcu_scalar_out": tuple(range(1, 7)),
    "pcu_vector_in": tuple(range(1, 11)),
    "pcu_vector_out": tuple(range(1, 7)),
    "pmu_bank_kb": (4, 8, 16, 32, 64),
    "pmu_stages": tuple(range(1, 17)),
    "pmu_regs_per_stage": tuple(range(2, 17)),
    "pmu_scalar_in": tuple(range(1, 17)),
    "pmu_scalar_out": tuple(range(0, 7)),
    "pmu_vector_in": tuple(range(1, 11)),
    "pmu_vector_out": tuple(range(1, 7)),
}


@dataclass(frozen=True)
class PcuParams:
    """Pattern Compute Unit shape (final column of Table 3)."""

    lanes: int = 16
    stages: int = 6
    regs_per_stage: int = 6
    scalar_in: int = 6
    scalar_out: int = 5
    vector_in: int = 3
    vector_out: int = 3

    def validate(self) -> "PcuParams":
        """Check every field against the Table 3 range."""
        for name, allowed in (("lanes", DESIGN_SPACE["pcu_lanes"]),
                              ("stages", DESIGN_SPACE["pcu_stages"]),
                              ("regs_per_stage",
                               DESIGN_SPACE["pcu_regs_per_stage"]),
                              ("scalar_in", DESIGN_SPACE["pcu_scalar_in"]),
                              ("scalar_out", DESIGN_SPACE["pcu_scalar_out"]),
                              ("vector_in", DESIGN_SPACE["pcu_vector_in"]),
                              ("vector_out", DESIGN_SPACE["pcu_vector_out"])):
            if getattr(self, name) not in allowed:
                raise ArchError(f"PCU {name}={getattr(self, name)} outside "
                                f"design space {allowed}")
        return self

    @property
    def fus(self) -> int:
        """Functional units in the datapath."""
        return self.lanes * self.stages

    @property
    def pipeline_registers(self) -> int:
        """Total pipeline register words."""
        return self.lanes * self.stages * self.regs_per_stage


@dataclass(frozen=True)
class PmuParams:
    """Pattern Memory Unit shape (final column of Table 3)."""

    banks: int = 16              # matches PCU lanes
    bank_kb: int = 16
    stages: int = 4              # scalar address datapath
    regs_per_stage: int = 6
    scalar_in: int = 4
    scalar_out: int = 0
    vector_in: int = 3
    vector_out: int = 1

    def validate(self) -> "PmuParams":
        """Check every field against the Table 3 range."""
        if self.bank_kb not in DESIGN_SPACE["pmu_bank_kb"]:
            raise ArchError(f"PMU bank_kb={self.bank_kb} outside design "
                            f"space")
        if self.stages not in DESIGN_SPACE["pmu_stages"]:
            raise ArchError("PMU stages outside design space")
        return self

    @property
    def scratch_kb(self) -> int:
        """Total scratchpad capacity per PMU in KB."""
        return self.banks * self.bank_kb

    @property
    def scratch_words(self) -> int:
        """Scratchpad capacity in 32-bit words."""
        return self.scratch_kb * 1024 // 4


@dataclass(frozen=True)
class DramParams:
    """Off-chip memory system (4x DDR3-1600, matching DRAMSim2 config)."""

    channels: int = 4
    #: DDR3-1600: 800 MHz bus, 64-bit, double data rate.
    channel_gbps: float = 12.8
    burst_bytes: int = 64
    banks_per_channel: int = 8
    #: core (1 GHz) cycles for a row-buffer hit round trip
    hit_latency: int = 25
    #: additional cycles for a row miss (precharge + activate)
    miss_penalty: int = 25
    #: request queue entries per channel
    queue_depth: int = 64

    @property
    def peak_gbps(self) -> float:
        """Aggregate peak bandwidth in GB/s (51.2 for the default)."""
        return self.channels * self.channel_gbps

    @property
    def words_per_burst(self) -> int:
        """32-bit words per DRAM burst."""
        return self.burst_bytes // 4


@dataclass(frozen=True)
class PlasticineParams:
    """The full chip: unit grid, IO, clock."""

    grid_cols: int = 16
    grid_rows: int = 8
    pcu: PcuParams = field(default_factory=PcuParams)
    pmu: PmuParams = field(default_factory=PmuParams)
    dram: DramParams = field(default_factory=DramParams)
    num_ags: int = 34
    num_coalescing_units: int = 4
    clock_ghz: float = 1.0
    #: switch-hop latency in cycles (registered links, Section 3.3)
    hop_latency: int = 1

    def validate(self) -> "PlasticineParams":
        """Check the composite configuration."""
        self.pcu.validate()
        self.pmu.validate()
        if self.grid_cols <= 0 or self.grid_rows <= 0:
            raise ArchError("grid dimensions must be positive")
        if self.pmu.banks != self.pcu.lanes:
            raise ArchError("PMU banks must match PCU lanes (Table 3)")
        return self

    @property
    def num_units(self) -> int:
        """Total PCU+PMU count."""
        return self.grid_cols * self.grid_rows

    @property
    def num_pcus(self) -> int:
        """PCUs in the checkerboard (1:1 ratio)."""
        return self.num_units // 2

    @property
    def num_pmus(self) -> int:
        """PMUs in the checkerboard (1:1 ratio)."""
        return self.num_units - self.num_pcus

    @property
    def peak_tflops(self) -> float:
        """Peak single-precision TFLOPS (FMA = 2 FLOPs per FU)."""
        return (self.num_pcus * self.pcu.fus * 2 * self.clock_ghz) / 1e3

    @property
    def onchip_mb(self) -> float:
        """Total scratchpad capacity in MB."""
        return self.num_pmus * self.pmu.scratch_kb / 1024.0

    def with_pcu(self, **kwargs) -> "PlasticineParams":
        """A copy with modified PCU fields (for design-space sweeps)."""
        return replace(self, pcu=replace(self.pcu, **kwargs))

    def with_pmu(self, **kwargs) -> "PlasticineParams":
        """A copy with modified PMU fields."""
        return replace(self, pmu=replace(self.pmu, **kwargs))


#: The architecture evaluated in Section 4 of the paper.
DEFAULT = PlasticineParams().validate()
