"""Simulation schedulers: the dense reference loop and the event-driven
wakeup scheduler.

The machine can run under two interchangeable, cycle-exact schedulers:

* :func:`run_dense` — the reference implementation: every controller and
  scratchpad ticks on every cycle.  Simple, obviously correct, slow.
* :class:`EventScheduler` — the default: units that report a *park*
  (a provable no-op tick with constant per-cycle accounting) leave the
  tick set and are re-armed only by the event that can unblock them
  (FIFO push/pop/close, DRAM queue room, DRAM completion, a timer, or a
  child activation/completion).  When *nothing* is runnable and all DRAM
  channel queues are empty, the scheduler fast-forwards the cycle
  counter to the next known event and bulk-applies the skipped cycles'
  accounting.

Cycle-exactness contract
------------------------
Both schedulers must produce identical :class:`~repro.sim.stats.SimStats`
and identical stall-attribution counters/timelines for any program.  The
event scheduler guarantees this by construction:

* a unit parks only from inside a tick branch that performed *only*
  constant per-cycle accounting (the :class:`Park` records exactly those
  effects, which are replayed for every skipped cycle);
* wakeups are liberal — a spurious wake just re-runs a tick the dense
  loop would have run anyway — while every event that could change a
  parked unit's behaviour is guaranteed to wake it;
* per-cycle processing iterates units in the dense loop's order, so
  intra-cycle interactions (who grabs the last DRAM queue slot, when a
  parent observes a child's completion) resolve identically;
* fast-forward only happens when no unit is runnable *and* every DRAM
  channel queue is empty, so the only future events are completions at
  known cycles and parked-unit timers.  Skipped cycles are accounted in
  bulk (including the every-256-cycle scratchpad retirement sweep and
  the deadlock watchdog, which trips at the same cycle it would under
  the dense loop).

Sampled *discrete* trace events (the diagnostic ring buffer) are not
replayed for skipped cycles; attribution counters and RLE timelines —
the numbers every report is built from — stay exact.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.trace.events import StallCause

#: recognised scheduler modes (CLI + Machine API)
SCHEDULER_MODES = ("event", "dense")

#: executed cycles between voluntary yields of the span generators
#: (bounds how long one batch instance can monopolise the driver)
_SPAN_CYCLES = 2048


class Park:
    """One parked unit: its wakeup set plus the exact per-cycle effects
    the dense loop would have applied while it stays blocked.

    ``until``          — absolute cycle at which the unit must re-tick
                         (pipeline drain, bank-conflict serialisation);
    ``busy_unit``      — leaf name charged ``SimStats.busy`` per cycle;
    ``counters``       — ``SimStats`` attribute names incremented by 1
                         per cycle (e.g. ``dram_stall_cycles``);
    ``fifo_counters``  — ``(FifoSim, attr)`` pairs incremented per cycle
                         (e.g. ``full_stalls``);
    ``marks``          — ``(unit_name, StallCause)`` attribution marks
                         emitted per cycle (first mark wins, as in the
                         dense loop);
    ``wake_fifos``     — FIFO names whose push/pop/close/reopen re-arms
                         the unit;
    ``wake_dram_room`` — re-arm when any DRAM channel dequeues (queue
                         room may have freed).

    DRAM completions always wake the issuing unit (the completion
    callback notifies the scheduler), so parks never need to subscribe
    to them explicitly.
    """

    __slots__ = ("until", "busy_unit", "counters", "fifo_counters",
                 "marks", "wake_fifos", "wake_dram_room")

    def __init__(self, until: Optional[int] = None,
                 busy_unit: Optional[str] = None,
                 counters: Tuple[str, ...] = (),
                 fifo_counters: Tuple = (),
                 marks: Tuple[Tuple[str, StallCause], ...] = (),
                 wake_fifos: Tuple[str, ...] = (),
                 wake_dram_room: bool = False):
        self.until = until
        self.busy_unit = busy_unit
        self.counters = counters
        self.fifo_counters = fifo_counters
        self.marks = marks
        self.wake_fifos = wake_fifos
        self.wake_dram_room = wake_dram_room


#: shared no-effect park (a wait with no per-cycle accounting)
EMPTY_PARK = Park()


def run_dense(machine, max_cycles: int):
    """The reference dense loop: tick everything, every cycle."""
    for _ in dense_spans(machine, max_cycles):
        pass
    return machine.stats


def dense_spans(machine, max_cycles: int):
    """:func:`run_dense` as a resumable generator (see
    :meth:`EventScheduler.spans`): yields the current cycle every
    ``_SPAN_CYCLES`` cycles so a batch driver can interleave instances."""
    machine.root.start({}, ())
    trace = machine.tracer
    faults = machine.faults
    last_progress_key = None
    last_progress_cycle = 0
    while machine.root.busy:
        machine.cycle += 1
        if machine.cycle > max_cycles:
            machine._raise_limit(max_cycles)
        if faults is not None and faults.next_cycle <= machine.cycle:
            faults.apply(machine.cycle)
        if trace is not None:
            trace.begin_cycle(machine.cycle)
        machine.dram.tick()
        machine.dram.deliver()
        machine.tick_units(machine.cycle)
        if machine.cycle % 256 == 0:
            machine.mem.retire_old()
        key = machine._progress_key()
        if key != last_progress_key:
            last_progress_key = key
            last_progress_cycle = machine.cycle
            if trace is not None:
                trace.progress(machine.cycle)
        elif machine.cycle - last_progress_cycle > machine.watchdog:
            machine._raise_deadlock(last_progress_cycle)
        if trace is not None:
            trace.end_cycle()
        if machine.cycle % _SPAN_CYCLES == 0:
            yield machine.cycle
    machine._epilogue()


#: unit states under the event scheduler
_IDLE, _RUNNING, _PARKED = 0, 1, 2


class EventScheduler:
    """Event-driven wakeup scheduler (cycle-exact vs the dense loop)."""

    def __init__(self, machine):
        self.m = machine
        self.outers = machine._outers
        self.leaves = machine._leaves
        #: child sim -> parent OuterControllerSim (completion wakeups)
        self._parent: Dict[int, object] = {}
        for outer in self.outers:
            for child in outer.children:
                self._parent[id(child)] = outer
        for node in self.outers + self.leaves:
            node._sched = self
            node._sched_state = _IDLE
            node._park = None
        for fifo in machine.fifos.values():
            fifo.sched = self
        for channel in machine.dram.channels:
            channel.on_dequeue = self._dram_room_event
        self.num_running = 0
        self._fifo_waiters: Dict[str, Set] = {}
        self._room_waiters: Set = set()
        self._timers: List[Tuple[int, int, object]] = []
        self._timer_seq = 0
        #: diagnostics: executed cycles vs fast-forwarded cycles
        self.executed_cycles = 0
        self.fast_forwarded_cycles = 0

    # -- wakeup plumbing (called from units, FIFOs, and DRAM) ------------------
    def node_started(self, node) -> None:
        """A parent activated ``node``: it joins the tick set."""
        state = node._sched_state
        if state == _RUNNING:
            return
        if state == _PARKED:
            self._unsubscribe(node)
        node._park = None
        node._sched_state = _RUNNING
        self.num_running += 1

    def node_event(self, node) -> None:
        """Something happened *to* a unit (a DRAM completion): re-arm."""
        self._wake(node)

    def fifo_event(self, fifo) -> None:
        """A FIFO changed (push/pop/close/reopen): wake its waiters."""
        waiters = self._fifo_waiters.get(fifo.decl.name)
        if waiters:
            for node in list(waiters):
                self._wake(node)

    def _dram_room_event(self) -> None:
        """A channel dequeued a request: queue room may have freed."""
        if self._room_waiters:
            for node in list(self._room_waiters):
                self._wake(node)

    def _wake(self, node) -> None:
        if node._sched_state != _PARKED:
            return
        self._unsubscribe(node)
        node._park = None
        node._sched_state = _RUNNING
        self.num_running += 1

    def _unsubscribe(self, node) -> None:
        park = node._park
        if park is None:
            return
        for name in park.wake_fifos:
            waiters = self._fifo_waiters.get(name)
            if waiters is not None:
                waiters.discard(node)
        if park.wake_dram_room:
            self._room_waiters.discard(node)
        # timers are invalidated lazily (checked when popped)

    def _park_node(self, node) -> None:
        park = node._park
        node._sched_state = _PARKED
        self.num_running -= 1
        for name in park.wake_fifos:
            self._fifo_waiters.setdefault(name, set()).add(node)
        if park.wake_dram_room:
            self._room_waiters.add(node)
        if park.until is not None:
            heapq.heappush(self._timers,
                           (park.until, self._timer_seq, node))
            self._timer_seq += 1

    def _finish_node(self, node) -> None:
        node._sched_state = _IDLE
        self.num_running -= 1
        parent = self._parent.get(id(node))
        if parent is not None:
            self._wake(parent)

    # -- per-cycle effect replay ------------------------------------------------
    def _apply_park_effects(self, park: Park, n: int) -> None:
        """Replay ``n`` skipped cycles' worth of a park's accounting."""
        stats = self.m.stats
        if park.busy_unit is not None:
            stats.busy(park.busy_unit, n)
        for attr in park.counters:
            setattr(stats, attr, getattr(stats, attr) + n)
        for fifo, attr in park.fifo_counters:
            setattr(fifo, attr, getattr(fifo, attr) + n)

    def _parked_cause_map(self) -> Dict[str, StallCause]:
        """Merged per-unit attribution for a span of all-parked cycles,
        in dense tick order (outers before leaves, first mark wins)."""
        cause_map: Dict[str, StallCause] = {}
        for outer in self.outers:
            if outer._sched_state == _PARKED:
                for unit, cause in outer._park.marks:
                    cause_map.setdefault(unit, cause)
        for leaf in self.leaves:
            if leaf._sched_state == _PARKED:
                for unit, cause in leaf._park.marks:
                    cause_map.setdefault(unit, cause)
        return cause_map

    # -- fast-forward -----------------------------------------------------------
    def _next_timer(self) -> Optional[int]:
        """Earliest valid park timer (lazily discarding stale entries)."""
        timers = self._timers
        while timers:
            until, _, node = timers[0]
            park = node._park
            if (node._sched_state == _PARKED and park is not None
                    and park.until == until):
                return until
            heapq.heappop(timers)
        return None

    def _fast_forward(self, cycle: int, last_progress: int,
                      max_cycles: int) -> int:
        """No unit is runnable: jump towards the next known event.

        Returns the (possibly advanced) current cycle; the main loop
        resumes normal processing at the cycle after it.  Only legal to
        skip cycles while every DRAM channel queue is empty — queued
        requests make the FR-FCFS schedule cycle-sensitive, so those
        regimes step cycle by cycle (with only the DRAM model active).
        """
        m = self.m
        dram = m.dram
        for channel in dram.channels:
            if channel.queue:
                return cycle
        wd_trip = last_progress + m.watchdog + 1
        target = wd_trip  # nothing pending: emulate the watchdog spin
        timer = self._next_timer()
        if timer is not None and timer < target:
            target = timer
        completion = dram.next_completion()
        if completion is not None and completion < target:
            target = completion
        # never jump over a scheduled fault event: resume normal
        # processing at its exact cycle so injection stays deterministic
        if m.faults is not None and m.faults.next_cycle < target:
            target = m.faults.next_cycle
        if target > max_cycles + 1:
            target = max_cycles + 1
        skipped = target - 1 - cycle
        if skipped <= 0:
            return cycle
        for leaf in self.leaves:
            if leaf._sched_state == _PARKED:
                self._apply_park_effects(leaf._park, skipped)
        trace = m.tracer
        if trace is not None:
            trace.account_span(self._parked_cause_map(), cycle + 1,
                               skipped)
        # the dense loop's every-256-cycle retirement sweep falls inside
        # the skipped span: run it (once is equivalent — no unit writes
        # between the skipped boundaries)
        if (cycle + skipped) // 256 > cycle // 256:
            m.mem.retire_old()
        dram.advance_to(cycle + skipped)
        self.fast_forwarded_cycles += skipped
        return cycle + skipped

    # -- main loop ----------------------------------------------------------------
    def run(self, max_cycles: int):
        for _ in self.spans(max_cycles):
            pass
        return self.m.stats

    def spans(self, max_cycles: int):
        """Run as a resumable generator, yielding the current cycle at
        span boundaries (after each fast-forward jump and every
        ``_SPAN_CYCLES`` executed cycles).

        This is how :func:`repro.sim.batch.run_batch` interleaves many
        instances of one design: each instance's scheduler is advanced
        span by span, with the batch driver always resuming the instance
        whose next-wake cycle is smallest.  :meth:`run` drains the
        generator in place, so a solo run is the single-instance special
        case of the same loop.
        """
        m = self.m
        m.root.start({}, ())
        self.node_started(m.root)
        trace = m.tracer
        faults = m.faults
        stats = m.stats
        outers = self.outers
        leaves = self.leaves
        root = m.root
        dram_tick = m.dram.tick
        dram_deliver = m.dram.deliver
        progress_key = m._progress_key
        retire = m.mem.retire_old
        watchdog = m.watchdog
        timers = self._timers
        last_progress_key = None
        last_progress_cycle = 0
        executed = 0
        cycle = m.cycle
        while root.busy:
            cycle += 1
            m.cycle = cycle
            if cycle > max_cycles:
                self.executed_cycles += executed
                m._raise_limit(max_cycles)
            if faults is not None and faults.next_cycle <= cycle:
                faults.apply(cycle)
            executed += 1
            if trace is not None:
                trace.begin_cycle(cycle)
            while timers and timers[0][0] <= cycle:
                until, _, node = heapq.heappop(timers)
                park = node._park
                if (node._sched_state == _PARKED and park is not None
                        and park.until == until):
                    self._wake(node)
            dram_tick()      # may free queue room -> wakes waiters
            dram_deliver()   # completions -> wake issuing units
            for outer in outers:
                state = outer._sched_state
                if state == _RUNNING:
                    outer._park = None
                    outer.tick(cycle)
                    if not outer.busy:
                        self._finish_node(outer)
                    elif outer._park is not None:
                        self._park_node(outer)
                elif state == _PARKED and trace is not None:
                    for unit, cause in outer._park.marks:
                        trace.mark(unit, cause)
            for leaf in leaves:
                state = leaf._sched_state
                if state == _RUNNING:
                    leaf._park = None
                    leaf.tick(cycle)
                    if not leaf.busy:
                        self._finish_node(leaf)
                    elif leaf._park is not None:
                        self._park_node(leaf)
                elif state == _PARKED:
                    park = leaf._park
                    if park.busy_unit is not None:
                        stats.busy(park.busy_unit)
                    for attr in park.counters:
                        setattr(stats, attr, getattr(stats, attr) + 1)
                    for fifo, attr in park.fifo_counters:
                        setattr(fifo, attr, getattr(fifo, attr) + 1)
                    if trace is not None:
                        for unit, cause in park.marks:
                            trace.mark(unit, cause)
            if cycle % 256 == 0:
                retire()
            key = progress_key()
            if key != last_progress_key:
                last_progress_key = key
                last_progress_cycle = cycle
                if trace is not None:
                    trace.progress(cycle)
            elif cycle - last_progress_cycle > watchdog:
                self.executed_cycles += executed
                m._raise_deadlock(last_progress_cycle)
            if trace is not None:
                trace.end_cycle()
            if self.num_running == 0 and root.busy:
                jumped = self._fast_forward(cycle, last_progress_cycle,
                                            max_cycles)
                if jumped != cycle:
                    cycle = jumped
                    m.cycle = cycle
                    yield cycle
            if executed % _SPAN_CYCLES == 0:
                yield cycle
        self.executed_cycles += executed
        m._epilogue()
