"""The machine: assembles and runs one configured application.

Builds per-controller simulators from a DHDL program and a
:class:`~repro.sim.config.FabricConfig`, wires them to the scratchpad,
FIFO, DRAM-image and DDR3-timing models, and runs the cycle loop until
the root controller completes (with a deadlock watchdog).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.dhdl.analysis import mem_reads as _mem_reads
from repro.dhdl.analysis import mem_writes as _mem_writes
from repro.dhdl.control import Scheme
from repro.dhdl.ir import (DhdlProgram, Gather, InnerCompute,
                           OuterController, Scatter, StreamStore, TileLoad,
                           TileStore, EmitStmt)
from repro.dhdl.memory import FifoDecl, Reg, Sram
from repro.dram.model import DramModel
from repro.errors import DeadlockError, SimulationError
from repro.sim.config import FabricConfig
from repro.sim.dram_image import DramImage, assign_bases
from repro.sim.fifo import FifoSim
from repro.sim.leaves import (GatherSim, InnerComputeSim, NodeSim,
                              ScatterSim, StreamStoreSim, TileLoadSim,
                              TileStoreSim)
from repro.sim.outer import DepEdge, OuterControllerSim
from repro.sim.scratchpad import MemoryState
from repro.sim.stats import SimStats
from repro.trace.tracer import Tracer


class Machine:
    """One configured Plasticine executing one application."""

    def __init__(self, dhdl: DhdlProgram, config: FabricConfig,
                 dram: Optional[DramModel] = None,
                 watchdog: int = 50_000,
                 tracer: Optional[Tracer] = None,
                 scheduler: str = "event",
                 max_cycles: int = 20_000_000,
                 tenant: Optional[int] = None,
                 dram_base: Optional[Dict[str, int]] = None,
                 fault_plan=None,
                 fault_sites: Optional[Dict[str, list]] = None,
                 tenant_name: Optional[str] = None):
        self.dhdl = dhdl
        self.config = config
        self.params = config.params
        self.stats = SimStats()
        self.watchdog = watchdog
        self.scheduler = scheduler
        self.max_cycles = max_cycles
        #: tenant id when co-resident on a shared Fabric (None solo).
        #: Scopes DRAM statistics, progress keys and trace events to
        #: this machine's own requests.
        self.tenant = tenant
        #: human-readable tenant name for fault/deadlock attribution
        self.tenant_name = tenant_name
        # dram_base overrides the artifact's frozen layout without
        # mutating it — the multi-tenant Fabric relocates each tenant's
        # arrays into a disjoint slice of the shared address space.
        base = dram_base or config.dram_base or assign_bases(dhdl.drams)
        self.image = DramImage(dhdl.drams, base)
        self.dram = dram or DramModel(queue_depth=self.params.dram.
                                      queue_depth)
        banks = (config.banks_override if config.banks_override
                 else self.params.pmu.banks)
        self.mem = MemoryState(dhdl.srams, dhdl.regs, banks=banks)
        self.fifos: Dict[str, FifoSim] = {
            f.name: FifoSim(f, lanes=self.params.pcu.lanes)
            for f in dhdl.fifos}
        self._leaves: List[NodeSim] = []
        self._outers: List[OuterControllerSim] = []
        self.root = self._build(dhdl.root)
        self.cycle = 0
        #: filled by run() in event mode (executed vs fast-forwarded)
        self.scheduler_stats = None
        self._nbuf_by_name = {s.name: s.nbuf for s in dhdl.srams}
        for reg in dhdl.regs:
            self._nbuf_by_name[reg.name] = reg.nbuf
        self.tracer = tracer if (tracer is not None
                                 and tracer.enabled) else None
        if self.tracer is not None:
            self._attach_tracer(self.tracer)
        #: fault injector (None on the — bit-identical — no-fault path)
        self.faults = None
        if fault_plan is not None:
            from repro.faults.inject import FaultInjector
            self.faults = FaultInjector(fault_plan, self,
                                        sites=fault_sites)

    # -- construction ------------------------------------------------------------
    def _build(self, ctrl) -> NodeSim:
        if isinstance(ctrl, OuterController):
            children = [self._build(c) for c in ctrl.children]
            edges = self._edges(ctrl)
            fifos_inside = self._fifos_inside(ctrl)
            sim = OuterControllerSim(ctrl, children, edges, self.mem,
                                     fifos_inside)
            self._outers.append(sim)
            return sim
        sim = self._build_leaf(ctrl)
        self._leaves.append(sim)
        timing = self.config.leaf_timing.get(ctrl.name)
        if timing is not None:
            self.stats.pcus_of[ctrl.name] = timing.num_pcus
        assign = self.config.ag_assign.get(ctrl.name)
        if assign is not None:
            self.stats.ags_of[ctrl.name] = assign.streams
        return sim

    def _build_leaf(self, ctrl) -> NodeSim:
        if isinstance(ctrl, InnerCompute):
            return InnerComputeSim(ctrl, self.config, self.mem, self.stats,
                                   self.fifos)
        if isinstance(ctrl, TileLoad):
            return TileLoadSim(ctrl, self.config, self.mem, self.stats,
                               self.dram, self.image)
        if isinstance(ctrl, TileStore):
            return TileStoreSim(ctrl, self.config, self.mem, self.stats,
                                self.dram, self.image)
        if isinstance(ctrl, Gather):
            return GatherSim(ctrl, self.config, self.mem, self.stats,
                             self.dram, self.image)
        if isinstance(ctrl, Scatter):
            return ScatterSim(ctrl, self.config, self.mem, self.stats,
                              self.dram, self.image)
        if isinstance(ctrl, StreamStore):
            return StreamStoreSim(ctrl, self.config, self.mem, self.stats,
                                  self.dram, self.image, self.fifos)
        raise SimulationError(f"unknown leaf {ctrl!r}")

    def _edges(self, ctrl: OuterController) -> List[DepEdge]:
        """Producer->consumer edges among the children of one scope."""
        reads = [_mem_reads(c) for c in ctrl.children]
        writes = [_mem_writes(c) for c in ctrl.children]
        edges: List[DepEdge] = []
        for j in range(len(ctrl.children)):
            for i in range(j):
                shared = writes[i] & (reads[j] | writes[j])
                for name in sorted(shared):
                    credits = self._credit_of(name)
                    edges.append(DepEdge(i, j, name, credits))
        return edges

    def _credit_of(self, name: str) -> int:
        if name.startswith("dram:"):
            return 1
        for sram in self.dhdl.srams:
            if sram.name == name:
                return sram.nbuf
        for reg in self.dhdl.regs:
            if reg.name == name:
                return reg.nbuf
        return 1  # FIFOs handle their own backpressure

    def _fifos_inside(self, ctrl: OuterController) -> List[FifoSim]:
        if ctrl.scheme is not Scheme.STREAMING:
            return []
        names: Set[str] = set()
        for child in ctrl.children:
            if isinstance(child, InnerCompute):
                for stmt in child.stmts:
                    if isinstance(stmt, EmitStmt):
                        names.add(stmt.fifo.name)
            elif isinstance(child, StreamStore):
                names.add(child.fifo.name)
        return [self.fifos[n] for n in sorted(names)]

    # -- tracing ------------------------------------------------------------------
    def _attach_tracer(self, tracer: Tracer) -> None:
        """Wire one enabled tracer into every instrumented component."""

        def walk(sim, path):
            sim.trace = tracer
            if isinstance(sim, OuterControllerSim):
                for child in sim.children:
                    walk(child, path + (sim.name,))
            else:
                kind = "pcu" if isinstance(sim, InnerComputeSim) else "ag"
                tracer.register_unit(sim.name, kind, path)

        walk(self.root, ())
        for fifo in self.fifos.values():
            fifo.trace = tracer
            tracer.register_track(fifo.decl.name, "fifo")
        for name, scratch in self.mem.scratchpads.items():
            scratch.trace = tracer
            tracer.register_track(name, "pmu")
        self.dram.attach_trace(tracer, tenant=self.tenant)

    def trace_report(self):
        """Stall-attribution report for a finished traced run."""
        from repro.trace.attribution import build_report
        if self.tracer is None:
            raise SimulationError(
                "machine was built without an enabled tracer")
        return build_report(self.tracer, self.stats)

    # -- execution ---------------------------------------------------------------
    def run(self, max_cycles: Optional[int] = None,
            scheduler: Optional[str] = None) -> SimStats:
        """Run to completion; returns the statistics object.

        ``scheduler`` selects the cycle loop: ``"event"`` (the default)
        parks provably blocked units and fast-forwards across all-parked
        spans; ``"dense"`` is the reference tick-everything loop.  Both
        are cycle-exact: identical SimStats and stall attribution.
        """
        from repro.sim.scheduler import EventScheduler, run_dense
        mode = scheduler if scheduler is not None else self.scheduler
        limit = max_cycles if max_cycles is not None else self.max_cycles
        if mode == "dense":
            return run_dense(self, limit)
        if mode == "event":
            sched = EventScheduler(self)
            self.scheduler_stats = sched
            return sched.run(limit)
        raise SimulationError(
            f"unknown scheduler {mode!r}; one of: event, dense")

    @classmethod
    def run_batch(cls, source, param_list, scheduler: str = "event",
                  tracer_factory=None):
        """Simulate N instances of one compiled design in one pass.

        Cohorts of instances sharing the same functional inputs run as
        one fully-evaluated leader plus log-replaying followers, stepped
        jointly at the minimum next-wake cycle; results are bit-exact
        against sequential :meth:`run` calls.  See
        :func:`repro.sim.batch.run_batch`.
        """
        from repro.sim.batch import run_batch as _run_batch
        return _run_batch(source, param_list, scheduler=scheduler,
                          tracer_factory=tracer_factory)

    def tick_units(self, cycle: int) -> None:
        """Tick every controller for one cycle (outers, then leaves).

        The shared inner body of the dense loop and of the multi-tenant
        Fabric loop: control decisions first so leaves observe
        up-to-date enables, then the datapaths.
        """
        for outer in self._outers:
            outer.tick(cycle)
        for leaf in self._leaves:
            leaf.tick(cycle)

    def _progress_key(self) -> Tuple:
        fifo_flow = sum(f.pushed + f.popped for f in self.fifos.values())
        completed = sum(sum(o._completed) for o in self._outers)
        reads, writes, pending = self.dram.progress_counts(self.tenant)
        return (self.stats.vector_issues, reads, writes, pending,
                fifo_flow, completed)

    def _whoami(self) -> str:
        """Tenant + region prefix for deadlock/fault attribution."""
        if self.tenant is None and self.tenant_name is None:
            return ""
        who = f"tenant {self.tenant}"
        if self.tenant_name:
            who += f" ({self.tenant_name})"
        region = self.config.region
        if region is not None:
            col0, row0, cols, rows = region
            who += f" in region {cols}x{rows}@({col0},{row0})"
        return who + ": "

    def _raise_deadlock(self, last_progress_cycle: int):
        busy = [leaf.name for leaf in self._leaves if leaf.busy]
        detail = ""
        waits: Dict[str, str] = {}
        if self.tracer is not None:
            from repro.trace.events import EventKind
            marks = self.tracer.current_marks()
            waits = {name: str(cause) for name, cause in
                     sorted(marks.items())[:12]}
            self.tracer.emit(EventKind.DEADLOCK, "machine",
                             (last_progress_cycle,))
            detail = f"; stall causes: {waits}"
        message = (
            f"{self._whoami()}no progress since cycle "
            f"{last_progress_cycle} (watchdog {self.watchdog} cycles, "
            f"now at cycle {self.cycle}); busy leaves: {busy}{detail}")
        if self.faults is not None and self.faults.fired:
            raise self.faults.fault_error(
                message, cycle=self.cycle,
                detail={"busy_leaves": busy, "stall_causes": waits,
                        "last_progress_cycle": last_progress_cycle})
        raise DeadlockError(message)

    def _raise_limit(self, limit: int):
        """Max-cycles trip, converted to a typed :class:`FaultError`
        when an injected fault has fired (never an unattributed hang)."""
        message = f"{self._whoami()}exceeded max_cycles={limit}"
        if self.faults is not None and self.faults.fired:
            raise self.faults.fault_error(message, cycle=self.cycle)
        raise SimulationError(message)

    def _epilogue(self) -> None:
        self.stats.cycles = self.cycle
        if self.tracer is not None:
            self.tracer.finalize(self.cycle)
        # write scalar results held in registers back to their DRAM cells
        for reg_name, array_name in self.dhdl.reg_outputs.items():
            value = self.mem.registers[reg_name].read()
            self.image.write_words(array_name, 0, [value])
        dram_stats = self.dram.stats_for(self.tenant)
        self.stats.dram = dram_stats
        peak_bytes_per_cycle = self.params.dram.peak_gbps  # GB/s == B/ns
        if self.cycle:
            self.stats.dram_busy_fraction = min(
                1.0, dram_stats["bytes"] / (self.cycle
                                            * peak_bytes_per_cycle))
            self.stats.dram_channels = self.dram.channel_util(
                self.tenant, self.cycle)

    # -- results ------------------------------------------------------------------
    def result(self, name: str) -> np.ndarray:
        """Final contents of one DRAM collection (logical shape)."""
        return self.image.as_array(name)

    def scalar(self, name: str):
        """Final value of one 0-d DRAM cell."""
        return self.image.scalar(name)
