"""Leaf controller simulators: PCU dataflow bodies and AG transfers.

Every leaf implements the :class:`NodeSim` protocol the outer scheduler
drives:

* ``start(bindings, version)`` — begin one activation (one iteration of
  the parent controller), with concrete values for enclosing indices;
* ``tick(cycle)`` — advance one cycle;
* ``busy`` — True until the activation fully completes (including
  pipeline drain and outstanding DRAM traffic).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dhdl.ir import (EmitStmt, Gather, HashReduceStmt, InnerCompute,
                           ReduceStmt, Scatter, StreamStore, TileLoad,
                           TileStore, WriteStmt)
from repro.dhdl.memory import Reg, Sram
from repro.dram.model import DramModel
from repro.dram.request import DramRequest
from repro.errors import SimulationError
from repro.patterns import expr as E
from repro.patterns.collections import _np_dtype
from repro.sim.config import FabricConfig
from repro.sim.counters import Batch, ChainEnumerator
from repro.sim.datapath import LaneContext
from repro.sim.dram_image import DramImage
from repro.sim.fifo import FifoSim
from repro.sim.scheduler import Park
from repro.sim.scratchpad import MemoryState
from repro.sim.stats import SimStats
from repro.trace.events import EventKind, StallCause

WORDS_PER_BURST = 16


class NodeSim:
    """Protocol for anything the outer scheduler can run."""

    name: str = "?"
    #: names of the physical leaf units in this subtree (tracing)
    leaf_names: Tuple[str, ...] = ()

    def start(self, bindings: dict, version: int) -> None:
        """Begin one activation."""
        raise NotImplementedError

    def tick(self, cycle: int) -> None:
        """Advance one cycle."""
        raise NotImplementedError

    @property
    def busy(self) -> bool:
        """True until the current activation completes."""
        raise NotImplementedError


class _LeafCommon(NodeSim):
    """Shared leaf state: memory handles, stats, config timing."""

    def __init__(self, name: str, mem: MemoryState, stats: SimStats):
        self.name = name
        self.mem = mem
        self.stats = stats
        self._active = False
        self.leaf_names = (name,)
        #: attached by the machine when tracing is enabled
        self.trace = None
        #: attached by the event scheduler; None under the dense loop
        self._sched = None
        #: park descriptor the last tick produced (event scheduler only)
        self._park = None

    @property
    def busy(self) -> bool:
        return self._active

    def _ctx(self, version: int) -> LaneContext:
        return LaneContext(self.mem, version)


class InnerComputeSim(_LeafCommon):
    """One inner dataflow pipeline (a chain of physical PCUs).

    Per cycle it issues one vector of up to ``lanes`` innermost indices,
    evaluates every statement for each lane, and charges bank-conflict
    and FIFO-backpressure stalls.  Completion waits for the pipeline to
    drain (``pipeline_depth`` extra cycles).
    """

    def __init__(self, leaf: InnerCompute, config: FabricConfig,
                 mem: MemoryState, stats: SimStats,
                 fifos: Dict[str, FifoSim]):
        super().__init__(leaf.name, mem, stats)
        self.leaf = leaf
        self.timing = config.timing_for(leaf.name)
        self.fifos = fifos
        self._enum: Optional[ChainEnumerator] = None
        self._ctx_cur: Optional[LaneContext] = None
        self._blocked_fifo: Optional[FifoSim] = None
        self._stall_until = 0
        self._drain_until = 0
        self._pending: Optional[Batch] = None
        # reduce accumulators: stmt index -> {key: (bindings, value)}
        self._accs: Dict[int, Dict[Tuple, Tuple[dict, object]]] = {}
        self._version: tuple = ()
        # the statement list is frozen at construction, so the op count
        # per lane and the per-lane FIFO word demand are constants
        self._ops_per_lane = sum(E.count_ops(root)
                                 for stmt in leaf.stmts
                                 for root in stmt.exprs())
        demand: Dict[str, int] = {}
        for stmt in leaf.stmts:
            if isinstance(stmt, EmitStmt):
                demand[stmt.fifo.name] = demand.get(stmt.fifo.name, 0) + 1
        self._emit_demand: Tuple[Tuple[str, int], ...] = \
            tuple(demand.items())

    # -- activation ---------------------------------------------------------------
    def start(self, bindings: dict, version: int) -> None:
        if self._active:
            raise SimulationError(f"{self.name}: started while busy")
        self._active = True
        self._version = version
        self._pending = None
        self._stall_until = 0
        self._drain_until = 0
        self._begin_body(bindings, version)
        # dense HashReduce targets start at their init value unless they
        # carry previous contents across activations
        for stmt in self.leaf.stmts:
            if isinstance(stmt, HashReduceStmt) and not stmt.carry:
                scratch = self.mem.scratch(stmt.mem)
                buf = scratch.buffer(version)
                buf.fill(_np_dtype(stmt.mem.dtype)(stmt.init))

    def _begin_body(self, bindings: dict, version) -> None:
        """Set up evaluation state for one activation (overridden by the
        batch record/replay leaves)."""
        self._ctx_cur = self._ctx(version)
        ctx = self._ctx_cur

        def evaluate(expr, bnd):
            return ctx.eval(expr, bnd, {})

        self._enum = ChainEnumerator(self.leaf.chain, evaluate, bindings)
        self._accs = {k: {} for k, s in enumerate(self.leaf.stmts)
                      if isinstance(s, ReduceStmt)}

    # -- per-cycle ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        if not self._active:
            return
        trace = self.trace
        if self._enum is None:  # draining
            if trace is not None:
                trace.mark(self.name, StallCause.DRAIN)
            if cycle >= self._drain_until:
                self._finish()
            elif (self._sched is not None
                    and self._drain_until > cycle + 1):
                self._park = Park(
                    until=self._drain_until,
                    marks=((self.name, StallCause.DRAIN),))
            return
        if cycle < self._stall_until:
            # serialising a conflicted vector access: the unit is
            # occupied (counts towards activity) but issues nothing
            self.stats.busy(self.name)
            if trace is not None:
                trace.mark(self.name, StallCause.BANK_CONFLICT)
            if (self._sched is not None
                    and self._stall_until > cycle + 1):
                self._park = Park(
                    until=self._stall_until, busy_unit=self.name,
                    marks=((self.name, StallCause.BANK_CONFLICT),))
            return
        batch = self._pending or self._enum.next_batch()
        self._pending = None
        if batch is None:
            self._enum = None
            self._drain_until = cycle + self.timing.pipeline_depth \
                + self.timing.output_hops
            self.stats.busy(self.name)
            if trace is not None:
                trace.mark(self.name, StallCause.DRAIN)
            if (self._sched is not None
                    and self._drain_until > cycle + 1):
                # park through the drain immediately instead of
                # rediscovering it one tick at a time
                self._park = Park(
                    until=self._drain_until,
                    marks=((self.name, StallCause.DRAIN),))
            return
        extra = self._execute(batch)
        if extra is None:           # FIFO full: retry this batch
            self._pending = batch
            self.stats.fifo_stall_cycles += 1
            if trace is not None:
                trace.mark(self.name, StallCause.FIFO_FULL)
            if self._sched is not None:
                fifo = self._blocked_fifo
                self._park = Park(
                    counters=("fifo_stall_cycles",),
                    fifo_counters=((fifo, "full_stalls"),),
                    marks=((self.name, StallCause.FIFO_FULL),),
                    wake_fifos=(fifo.decl.name,))
            return
        # the issue cycle itself; conflict serialisation cycles charge
        # themselves one by one in the stall branch above
        self.stats.busy(self.name)
        self.stats.vector_issues += 1
        if trace is not None:
            trace.mark(self.name, StallCause.BUSY)
            trace.emit(EventKind.ISSUE, self.name, (batch.lanes, extra))
        if extra:
            self._stall_until = cycle + 1 + extra
            if self._sched is not None:
                # the coming serialisation cycles are known now: park
                # straight through them (each charges busy + conflict
                # mark, exactly like the stall branch above)
                self._park = Park(
                    until=self._stall_until, busy_unit=self.name,
                    marks=((self.name, StallCause.BANK_CONFLICT),))

    # -- body execution ---------------------------------------------------------------
    def _execute(self, batch: Batch) -> Optional[int]:
        """Run all statements for one vector batch.

        Returns the extra stall cycles, or None if an EmitStmt found its
        FIFO full (the batch must be retried unchanged).
        """
        ctx = self._ctx_cur
        # pre-check FIFO room for the worst case (all lanes emit);
        # demand is summed per FIFO — several EmitStmts feeding the same
        # FIFO each need batch.lanes words, and checking them one at a
        # time would pass with room for only one statement's worth
        if not self._check_fifo_room(batch.lanes):
            return None

        write_addrs: Dict[str, List[int]] = {}
        lane_caches = [dict() for _ in batch.lane_bindings]
        for si, stmt in enumerate(self.leaf.stmts):
            if isinstance(stmt, WriteStmt):
                self._do_write(stmt, batch, ctx, lane_caches, write_addrs)
            elif isinstance(stmt, ReduceStmt):
                self._do_reduce(si, stmt, batch, ctx, lane_caches)
            elif isinstance(stmt, HashReduceStmt):
                self._do_hash(stmt, batch, ctx, lane_caches, write_addrs)
            elif isinstance(stmt, EmitStmt):
                self._do_emit(stmt, batch, ctx, lane_caches)
            else:
                raise SimulationError(f"unknown stmt {stmt!r}")
        extra = self._price(ctx.reset_accesses(), write_addrs)
        self.stats.conflict_cycles += extra
        self.stats.ops_executed += self._ops_per_lane * batch.lanes
        return extra

    def _check_fifo_room(self, lanes: int) -> bool:
        """All-lanes-emit FIFO room precheck (first failing FIFO is
        charged the stall, exactly as the dense loop always did)."""
        for name, per_lane in self._emit_demand:
            needed = per_lane * lanes
            fifo = self.fifos[name]
            if not fifo.can_push(needed):
                fifo.full_stalls += 1
                self._blocked_fifo = fifo
                if self.trace is not None:
                    self.trace.emit(EventKind.FIFO_FULL, name, (needed,))
                return False
        return True

    def _price(self, read_accesses: Dict, write_addrs: Dict) -> int:
        """Price the cycle: bank conflicts on reads and writes, per
        operand stream (each load site reads in its own stage)."""
        extra = 0
        for (name, _site), addrs in read_accesses.items():
            extra = max(extra, self.mem.scratchpads[name].read_cost(addrs))
        for name, addrs in write_addrs.items():
            extra = max(extra, self.mem.scratchpads[name].write_cost(addrs))
        return extra

    # effect-application primitives: every architecturally visible write
    # funnels through one of these, so the batch recorder/replayer can
    # intercept them without touching evaluation logic
    def _write_sram(self, ctx, mem, idxs, value) -> int:
        return ctx.write_sram(mem, idxs, value)

    def _write_reg(self, ctx, mem, value) -> None:
        ctx.write_reg(mem, value)

    def _hash_store(self, mem, buf, key, value) -> None:
        buf.flat[key] = value

    def _emit_values(self, fifo: FifoSim, values: List) -> None:
        fifo.push(values)

    def _do_write(self, stmt: WriteStmt, batch, ctx, caches, write_addrs):
        for lane, cache in zip(batch.lane_bindings, caches):
            value = ctx.eval(stmt.value, lane, cache)
            if isinstance(stmt.mem, Reg):
                self._write_reg(ctx, stmt.mem, value)
                continue
            idxs = [int(ctx.eval(a, lane, cache)) for a in stmt.addr]
            flat = self._write_sram(ctx, stmt.mem, idxs, value)
            write_addrs.setdefault(stmt.mem.name, []).append(flat)

    def _do_reduce(self, si: int, stmt: ReduceStmt, batch, ctx, caches):
        accs = self._accs[si]
        for lane, cache in zip(batch.lane_bindings, caches):
            values = [ctx.eval(v, lane, cache) for v in stmt.values]
            key: Tuple = tuple(int(ctx.eval(a, lane, cache))
                               for a in stmt.addr)
            prev = accs[key][1] if key in accs else list(stmt.inits)
            cbind = dict(lane)
            for k in range(stmt.width):
                cbind[stmt.acc_a[k]] = prev[k]
                cbind[stmt.acc_b[k]] = values[k]
            ccache = {}
            combined = [ctx.eval(c, cbind, ccache) for c in stmt.combines]
            accs[key] = (lane, combined)

    def _do_hash(self, stmt: HashReduceStmt, batch, ctx, caches,
                 write_addrs):
        for lane, cache in zip(batch.lane_bindings, caches):
            key = int(ctx.eval(stmt.key, lane, cache))
            value = ctx.eval(stmt.value, lane, cache)
            scratch = self.mem.scratch(stmt.mem)
            buf = scratch.buffer(self._version)
            if key < 0 or key >= buf.size:
                raise SimulationError(
                    f"{self.name}: hash key {key} outside "
                    f"[0, {buf.size})")
            cbind = dict(lane)
            cbind[stmt.acc_a] = buf.flat[key].item()
            cbind[stmt.acc_b] = value
            self._hash_store(stmt.mem, buf, key,
                             ctx.eval(stmt.combine, cbind, {}))
            write_addrs.setdefault(stmt.mem.name, []).append(key)

    def _do_emit(self, stmt: EmitStmt, batch, ctx, caches):
        fifo = self.fifos[stmt.fifo.name]
        values = []
        for lane, cache in zip(batch.lane_bindings, caches):
            if ctx.eval(stmt.cond, lane, cache):
                values.append(ctx.eval(stmt.value, lane, cache))
        if values:
            self._emit_values(fifo, values)

    # -- completion ---------------------------------------------------------------
    def _finish(self) -> None:
        self._apply_finals()
        # close any FIFO this body emits into
        for stmt in self.leaf.stmts:
            if isinstance(stmt, EmitStmt):
                self.fifos[stmt.fifo.name].close()
        self._active = False

    def _apply_finals(self) -> None:
        """Apply the end-of-activation reduce results."""
        ctx = self._ctx_cur
        for si, accs in self._accs.items():
            stmt = self.leaf.stmts[si]
            for key, (snapshot, values) in accs.items():
                if stmt.carry:
                    current = []
                    for mem in stmt.mems:
                        if isinstance(mem, Reg):
                            current.append(self.mem.reg(mem).read())
                        else:
                            buf = self.mem.scratch(mem).read_buffer(
                                self._version)
                            current.append(buf[key].item())
                    cbind = dict(snapshot)
                    for k in range(stmt.width):
                        cbind[stmt.acc_a[k]] = current[k]
                        cbind[stmt.acc_b[k]] = values[k]
                    ccache = {}
                    values = [ctx.eval(c, cbind, ccache)
                              for c in stmt.combines]
                for mem, value in zip(stmt.mems, values):
                    if isinstance(mem, Reg):
                        self._write_reg(ctx, mem, value)
                    else:
                        self._write_sram(ctx, mem, list(key), value)
        ctx.reset_accesses()


class _TransferCommon(_LeafCommon):
    """Shared transfer machinery: DRAM issue bookkeeping and AG limits."""

    def __init__(self, name: str, config: FabricConfig, mem: MemoryState,
                 stats: SimStats, dram: DramModel, image: DramImage):
        super().__init__(name, mem, stats)
        self.config = config
        self.dram = dram
        self.image = image
        self.streams = config.ags_for(name).streams
        self._outstanding = 0

    # parks are immutable and constant per engine: build each variant
    # once and reuse it (parking happens on most wait cycles)
    @property
    def _park_latency(self) -> Park:
        park = self.__dict__.get("_park_latency_c")
        if park is None:
            park = Park(busy_unit=self.name,
                        marks=((self.name, StallCause.DRAM_LATENCY),))
            self.__dict__["_park_latency_c"] = park
        return park

    def _park_bandwidth(self, busy: bool) -> Park:
        key = "_park_bw_busy" if busy else "_park_bw_idle"
        park = self.__dict__.get(key)
        if park is None:
            park = Park(busy_unit=self.name if busy else None,
                        counters=("dram_stall_cycles",),
                        marks=((self.name, StallCause.DRAM_BANDWIDTH),),
                        wake_dram_room=True)
            self.__dict__[key] = park
        return park

    def _issue(self, request: DramRequest, on_done) -> None:
        self._outstanding += 1
        if self.trace is not None:
            self.trace.emit(EventKind.AG_BURST, self.name,
                            (request.byte_addr, int(request.is_write)))

        def _cb(req):
            self._outstanding -= 1
            on_done(req)
            if self._sched is not None:
                self._sched.node_event(self)

        self.dram.submit(request, _cb)

    def _account(self, issued: int, blocked: bool) -> None:
        """Per-cycle busy/stall accounting shared by the AG engines.

        ``issued`` — address-stream slots that made progress this cycle;
        ``blocked`` — True when progress was stopped by a full DRAM
        channel queue (or a full coalescer), i.e. a bandwidth stall.
        """
        if issued or self._outstanding:
            self.stats.busy(self.name)
        if issued:
            cause = StallCause.BUSY
        elif blocked:
            self.stats.dram_stall_cycles += 1
            cause = StallCause.DRAM_BANDWIDTH
        elif self._outstanding:
            cause = StallCause.DRAM_LATENCY
        else:
            cause = StallCause.DRAIN
        if self.trace is not None:
            self.trace.mark(self.name, cause)
        if self._sched is not None and not issued:
            # an unproductive cycle: this tick will repeat verbatim
            # until DRAM queue room frees or a burst completes — park
            # with exactly the per-cycle accounting performed above
            if blocked:
                self._park = self._park_bandwidth(
                    bool(self._outstanding))
            elif self._outstanding:
                self._park = self._park_latency
            # DRAIN (no work, nothing in flight) means the engine is
            # about to complete in this same tick: never parked


class TileLoadSim(_TransferCommon):
    """Dense DRAM -> scratchpad burst load."""

    def __init__(self, leaf: TileLoad, config, mem, stats, dram, image):
        super().__init__(leaf.name, config, mem, stats, dram, image)
        self.leaf = leaf
        self._spans: List[Tuple[int, int, int]] = []  # (word_off, count, sram_flat)
        self._version: tuple = ()

    def start(self, bindings: dict, version: int) -> None:
        self._active = True
        self._version = version
        ctx = self._ctx(version)
        offsets = [int(ctx.eval(o, bindings, {})) for o in self.leaf.offsets]
        self._spans = list(self._tile_spans(offsets))
        # ensure destination buffer exists even for fully-clipped tiles
        self.mem.scratch(self.leaf.sram).buffer(version)

    def _tile_spans(self, offsets):
        """Yield (dram_word_off, word_count, sram_flat_off) per tile row.

        A tile of shape T over a row-major DRAM array of shape S starting
        at ``offsets`` decomposes into contiguous runs of the innermost
        dimension; runs are clipped to the array extents (partial edge
        tiles load what exists, the rest of the scratchpad keeps its
        previous/zero contents).
        """
        dram_shape = [int(d) if isinstance(d, int) else None
                      for d in self.leaf.dram.shape]
        if not dram_shape:          # 0-d cell: a single word
            dram_shape = [1]
            offsets = [0]
        tile = self.leaf.tile_shape or (1,)
        inner = tile[-1]
        outer_dims = tile[:-1]
        total_words = self.leaf.dram.words()
        inner_limit = (dram_shape[-1] if dram_shape[-1] is not None
                       else total_words)

        def flatten(prefix_positions):
            """Row-major flat word offset of (prefix..., offsets[-1])."""
            flat = 0
            for k, pos in enumerate(prefix_positions):
                flat = flat * dram_shape[k] + pos if k else pos
            if len(dram_shape) > 1:
                flat = flat * dram_shape[-1]
            return flat + offsets[-1]

        def rec(axis, prefix, sram_off):
            if axis == len(outer_dims):
                start = flatten(prefix)
                count = min(inner, inner_limit - offsets[-1],
                            total_words - start)
                if count > 0:
                    yield (start, count, sram_off)
                return
            size = dram_shape[axis] if dram_shape[axis] is not None \
                else 1 << 30
            inner_words = 1
            for d in tile[axis + 1:]:
                inner_words *= d
            for t in range(outer_dims[axis]):
                pos = offsets[axis] + t
                if pos >= size:
                    continue
                yield from rec(axis + 1, prefix + [pos],
                               sram_off + t * inner_words)

        yield from rec(0, [], 0)

    def tick(self, cycle: int) -> None:
        if not self._active:
            return
        issued = 0
        blocked = False
        while self._spans and issued < self.streams:
            word_off, count, sram_flat = self._spans[0]
            burst_words = min(count, WORDS_PER_BURST)
            addr = self.image.byte_addr(self.leaf.dram.name, word_off)
            if not self.dram.can_accept(addr):
                blocked = True
                break
            tag = (word_off, burst_words, sram_flat)
            self._issue(DramRequest(byte_addr=addr, tag=tag),
                        self._on_burst)
            issued += 1
            if burst_words == count:
                self._spans.pop(0)
            else:
                self._spans[0] = (word_off + burst_words,
                                  count - burst_words,
                                  sram_flat + burst_words)
        self._account(issued, blocked)
        if not self._spans:
            if self._outstanding == 0:
                self._active = False
            elif issued and self._sched is not None:
                # the span queue emptied this very cycle: every later
                # tick is provably a pure DRAM-latency wait until a
                # completion callback wakes us
                self._park = self._park_latency

    def _on_burst(self, request: DramRequest) -> None:
        word_off, count, sram_flat = request.tag
        words = self.image.read_words(self.leaf.dram.name, word_off, count)
        scratch = self.mem.scratch(self.leaf.sram)
        buf = scratch.buffer(self._version)
        flat_view = buf.reshape(-1)
        if sram_flat + count > flat_view.size:
            raise SimulationError(
                f"{self.name}: tile overruns scratchpad "
                f"{self.leaf.sram.name!r}")
        flat_view[sram_flat:sram_flat + count] = words.astype(buf.dtype)


class TileStoreSim(_TransferCommon):
    """Dense scratchpad -> DRAM burst store."""

    def __init__(self, leaf: TileStore, config, mem, stats, dram, image):
        super().__init__(leaf.name, config, mem, stats, dram, image)
        self.leaf = leaf
        self._spans: List[Tuple[int, int, int]] = []
        self._version: tuple = ()

    def start(self, bindings: dict, version: int) -> None:
        self._active = True
        self._version = version
        ctx = self._ctx(version)
        offsets = [int(ctx.eval(o, bindings, {})) for o in self.leaf.offsets]
        limit = None
        if self.leaf.count is not None:
            limit = int(ctx.eval(self.leaf.count, bindings, {}))
        loader = TileLoadSim.__new__(TileLoadSim)  # reuse span generator
        loader.leaf = self.leaf
        spans = list(TileLoadSim._tile_spans(loader, offsets))
        if limit is not None:
            clipped = []
            remaining = limit
            for word_off, count, sram_flat in spans:
                if remaining <= 0:
                    break
                take = min(count, remaining)
                clipped.append((word_off, take, sram_flat))
                remaining -= take
            spans = clipped
        self._spans = spans

    def tick(self, cycle: int) -> None:
        if not self._active:
            return
        issued = 0
        blocked = False
        while self._spans and issued < self.streams:
            word_off, count, sram_flat = self._spans[0]
            burst_words = min(count, WORDS_PER_BURST)
            addr = self.image.byte_addr(self.leaf.dram.name, word_off)
            if not self.dram.can_accept(addr):
                blocked = True
                break
            # move the data now; the request models timing
            scratch = self.mem.scratch(self.leaf.sram)
            buf = scratch.read_buffer(self._version).reshape(-1)
            scratch.reads += burst_words
            self.image.write_words(
                self.leaf.dram.name, word_off,
                buf[sram_flat:sram_flat + burst_words])
            self._issue(DramRequest(byte_addr=addr, is_write=True),
                        lambda req: None)
            issued += 1
            if burst_words == count:
                self._spans.pop(0)
            else:
                self._spans[0] = (word_off + burst_words,
                                  count - burst_words,
                                  sram_flat + burst_words)
        self._account(issued, blocked)
        if not self._spans:
            if self._outstanding == 0:
                self._active = False
            elif issued and self._sched is not None:
                # all bursts in flight: pure latency wait from here on
                self._park = self._park_latency


class GatherSim(_TransferCommon):
    """Sparse load through the coalescing unit.

    Addresses (element indices into the flattened DRAM collection) come
    from a scratchpad; one word lands in the destination scratchpad per
    address.  Addresses falling in the same 64-byte burst coalesce into
    one DRAM request (the paper's coalescing cache).
    """

    def __init__(self, leaf: Gather, config, mem, stats, dram, image):
        super().__init__(leaf.name, config, mem, stats, dram, image)
        self.COALESCE_ENTRIES = config.coalesce_entries
        self.leaf = leaf
        self._queue: List[Tuple[int, int]] = []   # (dst_flat, elem_idx)
        self._open: Dict[int, List[Tuple[int, int]]] = {}
        self._version: tuple = ()
        self.coalesced_hits = 0

    def start(self, bindings: dict, version: int) -> None:
        self._active = True
        self._version = version
        ctx = self._ctx(version)
        scratch = self.mem.scratch(self.leaf.addr_sram)
        addr_buf = scratch.read_buffer(version).reshape(-1)
        if self.leaf.count is not None:
            count = int(ctx.eval(self.leaf.count, bindings, {}))
            count = min(count, addr_buf.size)
        else:
            # dynamic: gather exactly the addresses produced upstream
            count = scratch.watermark_for(version) or addr_buf.size
        self._queue = [(k, int(addr_buf[k])) for k in range(count)]
        self._open = {}
        self.mem.scratch(self.leaf.dst_sram).buffer(version)

    def tick(self, cycle: int) -> None:
        if not self._active:
            return
        # each AG stream feeds one address per cycle into the coalescer
        budget = self.streams
        issued = 0
        blocked = False
        while self._queue and budget > 0:
            dst_flat, elem = self._queue[0]
            if elem < 0 or elem >= self.leaf.dram.words():
                raise SimulationError(
                    f"{self.name}: gather index {elem} out of bounds for "
                    f"{self.leaf.dram.name!r}")
            addr = self.image.byte_addr(self.leaf.dram.name, elem)
            burst = addr // 64
            if burst in self._open:
                self._open[burst].append((dst_flat, elem))
                self._queue.pop(0)
                self.coalesced_hits += 1
                if self.trace is not None:
                    self.trace.emit(EventKind.COALESCE_HIT, self.name,
                                    (burst,))
                budget -= 1
                issued += 1
                continue
            if len(self._open) >= self.COALESCE_ENTRIES:
                blocked = True
                break
            if not self.dram.can_accept(addr):
                blocked = True
                break
            self._open[burst] = [(dst_flat, elem)]
            self._issue(DramRequest(byte_addr=addr, tag=burst),
                        self._on_burst)
            self._queue.pop(0)
            budget -= 1
            issued += 1
        self._account(issued, blocked)
        if not self._queue:
            if self._outstanding == 0 and not self._open:
                self._active = False
            elif issued and self._sched is not None:
                # every address dispatched: pure latency wait from
                # here on (open coalescer entries imply requests in
                # flight, whose completions wake us)
                self._park = self._park_latency

    def _on_burst(self, request: DramRequest) -> None:
        pendings = self._open.pop(request.tag, [])
        scratch = self.mem.scratch(self.leaf.dst_sram)
        buf = scratch.buffer(self._version).reshape(-1)
        for dst_flat, elem in pendings:
            if dst_flat >= buf.size:
                raise SimulationError(
                    f"{self.name}: gather destination overflow")
            value = self.image.read_words(self.leaf.dram.name, elem, 1)[0]
            buf[dst_flat] = value


class ScatterSim(_TransferCommon):
    """Sparse store through the coalescing unit."""

    def __init__(self, leaf: Scatter, config, mem, stats, dram, image):
        super().__init__(leaf.name, config, mem, stats, dram, image)
        self.COALESCE_ENTRIES = config.coalesce_entries
        self.leaf = leaf
        self._queue: List[Tuple[int, object]] = []
        self._open: Dict[int, int] = {}
        self.coalesced_hits = 0

    def start(self, bindings: dict, version: int) -> None:
        self._active = True
        ctx = self._ctx(version)
        addr_scratch = self.mem.scratch(self.leaf.addr_sram)
        addr_buf = addr_scratch.read_buffer(version).reshape(-1)
        val_buf = self.mem.scratch(
            self.leaf.val_sram).read_buffer(version).reshape(-1)
        count = min(addr_buf.size, val_buf.size)
        if self.leaf.count is not None:
            count = min(int(ctx.eval(self.leaf.count, bindings, {})), count)
        else:
            produced = addr_scratch.watermark_for(version)
            if produced:
                count = min(count, produced)
        self._queue = [(int(addr_buf[k]), val_buf[k]) for k in range(count)]
        self._open = {}

    def tick(self, cycle: int) -> None:
        if not self._active:
            return
        budget = self.streams
        issued = 0
        blocked = False
        while self._queue and budget > 0:
            elem, value = self._queue[0]
            if elem < 0 or elem >= self.leaf.dram.words():
                raise SimulationError(
                    f"{self.name}: scatter index {elem} out of bounds "
                    f"for {self.leaf.dram.name!r}")
            # data is applied immediately; requests model timing
            addr = self.image.byte_addr(self.leaf.dram.name, elem)
            burst = addr // 64
            if burst in self._open:
                self.image.write_words(self.leaf.dram.name, elem, [value])
                self._open[burst] += 1
                self._queue.pop(0)
                self.coalesced_hits += 1
                if self.trace is not None:
                    self.trace.emit(EventKind.COALESCE_HIT, self.name,
                                    (burst,))
                budget -= 1
                issued += 1
                continue
            if len(self._open) >= self.COALESCE_ENTRIES:
                blocked = True
                break
            if not self.dram.can_accept(addr):
                blocked = True
                break
            self.image.write_words(self.leaf.dram.name, elem, [value])
            self._open[burst] = 1

            def _done(req, burst=burst):
                self._open.pop(burst, None)

            self._issue(DramRequest(byte_addr=addr, is_write=True,
                                    tag=burst), _done)
            self._queue.pop(0)
            budget -= 1
            issued += 1
        self._account(issued, blocked)
        if not self._queue:
            if self._outstanding == 0:
                self._active = False
            elif issued and self._sched is not None:
                # every element dispatched: pure latency wait until
                # the remaining write acknowledgements arrive
                self._park = self._park_latency


class StreamStoreSim(_TransferCommon):
    """Drain a FIFO into consecutive DRAM words (FlatMap output)."""

    def __init__(self, leaf: StreamStore, config, mem, stats, dram, image,
                 fifos: Dict[str, FifoSim]):
        super().__init__(leaf.name, config, mem, stats, dram, image)
        self.leaf = leaf
        self.fifo = fifos[leaf.fifo.name]
        self._written = 0
        self._staging: List = []
        self._base_word = 0

    def start(self, bindings: dict, version: int) -> None:
        self._active = True
        ctx = self._ctx(version)
        self._base_word = int(ctx.eval(self.leaf.base_offset, bindings, {}))
        self._written = 0
        self._staging = []

    def tick(self, cycle: int) -> None:
        if not self._active:
            return
        blocked = False
        got = self.fifo.pop(WORDS_PER_BURST - len(self._staging))
        if got:
            self._staging.extend(got)
        flush = (len(self._staging) == WORDS_PER_BURST
                 or (self.fifo.drained and self._staging))
        flushed = False
        if flush:
            word_off = self._base_word + self._written
            addr = self.image.byte_addr(self.leaf.dram.name, word_off)
            if self.dram.can_accept(addr):
                self.image.write_words(self.leaf.dram.name, word_off,
                                       self._staging)
                self._issue(DramRequest(byte_addr=addr, is_write=True),
                            lambda req: None)
                self._written += len(self._staging)
                self._staging = []
                flushed = True
            else:
                blocked = True
        starved = (not got and not flushed
                   and not self.fifo.drained and not self.fifo.items)
        if starved:
            # upstream has not produced yet: a FIFO-empty stall
            self.fifo.empty_stalls += 1
            self.stats.fifo_empty_stall_cycles += 1
            if self.trace is not None:
                self.trace.emit(EventKind.FIFO_EMPTY,
                                self.fifo.decl.name, ())
        if starved and not self._outstanding:
            if self.trace is not None:
                self.trace.mark(self.name, StallCause.FIFO_EMPTY)
        else:
            self._account(len(got) + (1 if flushed else 0), blocked)
        if self._sched is not None and not got and not flushed:
            # unproductive cycle: park, replicating exactly the
            # accounting above (which also depends on the FIFO, so the
            # generic _account park is replaced with one that re-arms
            # on FIFO activity too)
            self._park = self._make_park(starved, blocked)
        if (self.fifo.drained and not self._staging
                and self._outstanding == 0):
            reg = self.mem.reg(self.leaf.count_reg)
            if self.leaf.accumulate:
                reg.write(reg.read() + self._written)
            else:
                reg.write(self._written)
            self._active = False

    def _make_park(self, starved: bool, blocked: bool) -> Park:
        """Park descriptor mirroring this tick's stall accounting."""
        counters = []
        fifo_counters = []
        busy_unit = None
        if starved:
            counters.append("fifo_empty_stall_cycles")
            fifo_counters.append((self.fifo, "empty_stalls"))
        if starved and not self._outstanding:
            mark = StallCause.FIFO_EMPTY
        elif blocked:
            counters.append("dram_stall_cycles")
            busy_unit = self.name if self._outstanding else None
            mark = StallCause.DRAM_BANDWIDTH
        elif self._outstanding:
            busy_unit = self.name
            mark = StallCause.DRAM_LATENCY
        else:
            mark = StallCause.DRAIN
        return Park(busy_unit=busy_unit, counters=tuple(counters),
                    fifo_counters=tuple(fifo_counters),
                    marks=((self.name, mark),),
                    wake_fifos=(self.fifo.decl.name,),
                    wake_dram_room=blocked)
