"""PMU scratchpad simulation: banking modes, N-buffering, conflict costs.

Data correctness and timing are modelled together: contents live in
versioned numpy buffers (one logical version per producing parent
iteration — the architectural equivalent of N-buffer rotation), and the
banking mode determines how many lane accesses one cycle can service:

* ``STRIDED`` — lane addresses spread across ``banks`` by low-order
  interleaving; conflicting lanes serialise.
* ``DUPLICATION`` — every bank holds a full copy: any 16 random *reads*
  per cycle, but writes must go to all banks (single write stream).
* ``FIFO`` — in-order streaming; always conflict-free.
* ``LINE_BUFFER`` — sliding-window reads; conflict-free for unit-stride
  window accesses.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.dhdl.memory import BankingMode, Reg, Sram
from repro.errors import SimulationError
from repro.patterns.collections import _np_dtype
from repro.trace.events import EventKind


class ScratchpadSim:
    """Runtime state of one logical SRAM (possibly spanning PMUs)."""

    def __init__(self, sram: Sram, banks: int = 16):
        self.sram = sram
        self.banks = banks
        self.versions: Dict[int, np.ndarray] = {}
        #: highest flat address written + 1, per version (how much of the
        #: buffer holds live data; drives dynamic gather/scatter counts)
        self.watermark: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0
        self.conflict_cycles = 0
        #: attached by the machine when tracing is enabled
        self.trace = None

    def _blank(self) -> np.ndarray:
        return np.zeros(self.sram.shape, dtype=_np_dtype(self.sram.dtype))

    def buffer(self, version: int) -> np.ndarray:
        """The buffer for a version, creating it on first write.

        New versions copy the newest older version (copy-on-write): a
        physical buffer's contents persist until overwritten, which is
        what cross-activation accumulation (carry) relies on.
        """
        if version not in self.versions:
            older = [v for v in self.versions if v < version]
            if older:
                self.versions[version] = self.versions[max(older)].copy()
            else:
                self.versions[version] = self._blank()
        return self.versions[version]

    def note_write(self, version: int, flat: int) -> None:
        """Track the written extent of a version (for dynamic counts)."""
        current = self.watermark.get(version, 0)
        if flat + 1 > current:
            self.watermark[version] = flat + 1

    def watermark_for(self, version: int) -> int:
        """Written extent of the newest version <= requested (0 if
        never written)."""
        if version in self.watermark:
            return self.watermark[version]
        older = [v for v in self.watermark if v < version]
        if older:
            return self.watermark[max(older)]
        return 0

    def read_buffer(self, version: int) -> np.ndarray:
        """Reader view: the newest version <= requested.

        Exact-match versions model N-buffer hand-off; falling back to an
        older version models loop-carried scratchpads in sequential
        loops (the reader sees the last completed write).
        """
        if version in self.versions:
            return self.versions[version]
        older = [v for v in self.versions if v < version]
        if older:
            return self.versions[max(older)]
        # never written: architectural zeros
        return self.buffer(version)

    def retire_old(self) -> None:
        """Bound live buffers to the N-buffer depth (plus one carried
        version for loop-carried reads)."""
        keep = max(self.sram.nbuf, 1) + 1
        live = sorted(self.versions)
        for version in live[:-keep]:
            del self.versions[version]

    # -- timing ------------------------------------------------------------------
    def read_extra(self, flat_addrs: Sequence[int]) -> int:
        """Pure conflict cost of one vector of lane reads (no counter
        side effects) — memoizable per banking configuration."""
        mode = self.sram.banking
        if mode in (BankingMode.FIFO, BankingMode.LINE_BUFFER,
                    BankingMode.DUPLICATION):
            return 0
        return self._conflict_extra(flat_addrs)

    def account_read(self, n_addrs: int, extra: int) -> None:
        """Charge the counters/trace for one priced vector of reads."""
        self.reads += n_addrs
        self.conflict_cycles += extra
        if extra and self.trace is not None:
            self.trace.emit(EventKind.BANK_CONFLICT, self.sram.name,
                            (extra, n_addrs))

    def read_cost(self, flat_addrs: Sequence[int]) -> int:
        """Extra cycles (beyond 1) to service one vector of lane reads."""
        extra = self.read_extra(flat_addrs)
        self.account_read(len(flat_addrs), extra)
        return extra

    def _conflict_extra(self, flat_addrs) -> int:
        """Serialisation beyond 1 cycle under the configured decoder.

        Identical addresses are one physical read broadcast to all
        requesting lanes, so they are deduplicated first.
        """
        stride = self.sram.bank_stride
        counts: Dict[int, int] = {}
        for addr in set(flat_addrs):
            bank = (addr // stride) % self.banks
            counts[bank] = counts.get(bank, 0) + 1
        worst = max(counts.values(), default=1)
        return worst - 1

    def write_extra(self, flat_addrs: Sequence[int]) -> int:
        """Pure conflict cost of one vector of lane writes."""
        mode = self.sram.banking
        if mode is BankingMode.DUPLICATION:
            # every write is broadcast to all banks: one word per cycle
            return max(0, len(flat_addrs) - 1)
        if mode in (BankingMode.FIFO, BankingMode.LINE_BUFFER):
            return 0
        return self._conflict_extra(flat_addrs)

    def account_write(self, n_addrs: int, extra: int) -> None:
        """Charge the counters/trace for one priced vector of writes."""
        self.writes += n_addrs
        self.conflict_cycles += extra
        if extra and self.trace is not None:
            self.trace.emit(EventKind.BANK_CONFLICT, self.sram.name,
                            (extra, n_addrs))

    def write_cost(self, flat_addrs: Sequence[int]) -> int:
        """Extra cycles to service one vector of lane writes."""
        extra = self.write_extra(flat_addrs)
        self.account_write(len(flat_addrs), extra)
        return extra


class RegSim:
    """Runtime state of one scalar register."""

    def __init__(self, reg: Reg):
        self.reg = reg
        np_dtype = _np_dtype(reg.dtype)
        init = reg.init if reg.init is not None else 0
        self.value = np_dtype(init)

    def read(self):
        """Current value."""
        return self.value.item() if hasattr(self.value, "item") \
            else self.value

    def write(self, value) -> None:
        """Overwrite the register."""
        np_dtype = _np_dtype(self.reg.dtype)
        self.value = np_dtype(value)


class MemoryState:
    """All on-chip memory state for one running application."""

    def __init__(self, srams, regs, banks: int = 16):
        self.scratchpads: Dict[str, ScratchpadSim] = {
            s.name: ScratchpadSim(s, banks) for s in srams}
        self.registers: Dict[str, RegSim] = {r.name: RegSim(r) for r in regs}

    def scratch(self, sram: Sram) -> ScratchpadSim:
        """Scratchpad sim for a declaration."""
        try:
            return self.scratchpads[sram.name]
        except KeyError:
            raise SimulationError(
                f"scratchpad {sram.name!r} was never placed") from None

    def retire_old(self) -> None:
        """Periodic retirement sweep over every scratchpad.

        The scheduler (dense or event-driven) calls this on every
        256-cycle boundary — including boundaries crossed by a
        fast-forward jump — to bound live N-buffer versions.
        """
        for scratch in self.scratchpads.values():
            scratch.retire_old()

    def reg(self, reg: Reg) -> RegSim:
        """Register sim for a declaration."""
        try:
            return self.registers[reg.name]
        except KeyError:
            raise SimulationError(
                f"register {reg.name!r} was never placed") from None
