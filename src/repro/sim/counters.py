"""Counter-chain enumeration for controller simulation.

A :class:`ChainEnumerator` walks a (possibly data-dependent) counter chain
lazily, producing one *vector batch* per call: the current values of all
outer counters plus up to ``par`` consecutive innermost values (the SIMD
lanes issued in one cycle).  Bounds expressions are re-evaluated whenever
the dims they depend on advance, matching the PMU/PCU counter hardware.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.dhdl.ir import CounterChain
from repro.errors import SimulationError
from repro.patterns import expr as E


class Batch:
    """One vector issue: shared outer bindings + per-lane inner values."""

    __slots__ = ("lane_bindings", "outer")

    def __init__(self, lane_bindings: List[dict], outer: dict):
        self.lane_bindings = lane_bindings
        self.outer = outer

    @property
    def lanes(self) -> int:
        """Active lanes in this issue."""
        return len(self.lane_bindings)


class ChainEnumerator:
    """Lazily enumerate a counter chain in vector batches.

    ``evaluate`` resolves bound expressions (which may read registers and
    scratchpads) against the current partial bindings.
    """

    def __init__(self, chain: CounterChain,
                 evaluate: Callable[[E.Expr, dict], int],
                 base_bindings: Optional[dict] = None,
                 max_total: int = 50_000_000):
        for axis, counter in enumerate(chain.counters):
            # _advance only checks ``cur < hi``: a zero step would spin
            # forever and a negative one would walk away from the bound,
            # so reject both before any iteration state exists
            if counter.step <= 0:
                raise SimulationError(
                    f"counter chain dim {axis} has non-positive step "
                    f"{counter.step}; steps must be >= 1")
        self.chain = chain
        self.evaluate = evaluate
        self.base = dict(base_bindings or {})
        self.max_total = max_total
        self._emitted = 0
        depth = chain.depth
        self._lo = [0] * depth
        self._hi = [0] * depth
        self._cur = [0] * depth
        self._exhausted = False
        self._primed = False

    # -- bound evaluation ---------------------------------------------------------
    def _bindings_upto(self, axis: int) -> dict:
        bindings = dict(self.base)
        for k in range(axis):
            bindings[self.chain.indices[k]] = self._cur[k]
        return bindings

    def _eval_bounds(self, axis: int) -> bool:
        """(Re)compute lo/hi for ``axis``; True if the range is non-empty."""
        bindings = self._bindings_upto(axis)
        counter = self.chain.counters[axis]
        self._lo[axis] = int(self.evaluate(counter.lo, bindings))
        self._hi[axis] = int(self.evaluate(counter.hi, bindings))
        return self._lo[axis] < self._hi[axis]

    def _descend(self, axis: int) -> bool:
        """Initialise dims ``axis..`` to their first values; False when the
        subtree is empty and the caller must advance dim ``axis-1``."""
        for k in range(axis, self.chain.depth):
            while True:
                if not self._eval_bounds(k):
                    # empty range: advance the nearest outer dim
                    if not self._advance(k - 1):
                        return False
                    continue
                self._cur[k] = self._lo[k]
                break
        return True

    def _advance(self, axis: int) -> bool:
        """Step dim ``axis``; on wrap, recurse outward.  False = done."""
        if axis < 0:
            self._exhausted = True
            return False
        counter = self.chain.counters[axis]
        self._cur[axis] += counter.step
        if self._cur[axis] < self._hi[axis]:
            return self._descend(axis + 1)
        return self._advance(axis - 1)

    # -- batching -----------------------------------------------------------------
    def next_batch(self) -> Optional[Batch]:
        """The next vector issue, or None when the chain is exhausted."""
        if self._exhausted:
            return None
        if not self._primed:
            self._primed = True
            if not self._descend(0):
                self._exhausted = True
                return None
        depth = self.chain.depth
        inner = depth - 1
        counter = self.chain.counters[inner]
        outer = self._bindings_upto(inner)
        lanes = []
        value = self._cur[inner]
        for _ in range(counter.par):
            if value >= self._hi[inner]:
                break
            if self._emitted + len(lanes) >= self.max_total:
                # trip before the over-limit batch exists: a runaway
                # data-dependent bound must not commit partial state
                raise SimulationError(
                    "counter chain exceeded max_total="
                    f"{self.max_total} iterations; runaway dynamic "
                    "bound?")
            lane = dict(outer)
            lane[self.chain.indices[inner]] = value
            lanes.append(lane)
            value += counter.step
        self._emitted += len(lanes)
        # position after the batch; wrap into outer dims when exhausted
        self._cur[inner] = value
        if value >= self._hi[inner]:
            self._advance(inner - 1)
        if not lanes:
            return self.next_batch()
        return Batch(lanes, outer)
