"""Datapath evaluation: symbolic expressions over on-chip memory state.

The PCU datapath is evaluated functionally, one lane at a time, while the
addresses touched per scratchpad are recorded so the caller can charge
bank-conflict cycles per the banking mode.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.dhdl.memory import FifoDecl, Reg, Sram
from repro.errors import SimulationError
from repro.patterns import expr as E
from repro.patterns.collections import _np_dtype
from repro.sim.scratchpad import MemoryState


class LaneContext:
    """Evaluates expressions for one activation of an inner controller.

    ``version`` selects which N-buffer generation reads observe.
    ``accesses`` accumulates ``(sram name, load site) -> [flat
    addresses]`` for the current vector of lanes; the controller drains
    it each cycle to price bank conflicts.  Each load site is priced as
    its own pipelined operand stream (distinct pipeline stages issue
    their reads on different cycles).
    """

    def __init__(self, mem: MemoryState, version: int):
        self.mem = mem
        self.version = version
        self.accesses: Dict[str, List[int]] = {}
        self.fifo_pops: List[Tuple[FifoDecl, object]] = []

    def reset_accesses(self) -> Dict[str, List[int]]:
        """Return and clear the recorded accesses."""
        out, self.accesses = self.accesses, {}
        return out

    # -- evaluation ---------------------------------------------------------------
    def eval(self, node: E.Expr, bindings, cache=None):
        """Evaluate one expression to a scalar under lane bindings."""
        if cache is None:
            cache = {}
        if node in cache:
            return cache[node]
        result = self._eval(node, bindings, cache)
        if isinstance(result, float) and node.dtype == E.FLOAT32:
            result = float(np.float32(result))
        cache[node] = result
        return result

    def _eval(self, node, bindings, cache):
        if isinstance(node, E.Const):
            return node.value
        if isinstance(node, (E.Idx, E.Var)):
            try:
                return bindings[node]
            except KeyError:
                raise SimulationError(
                    f"unbound symbol {node!r} in datapath") from None
        if isinstance(node, E.Load):
            return self._load(node, bindings, cache)
        if isinstance(node, E.BinOp):
            return E.eval_binary(node.op,
                                 self.eval(node.lhs, bindings, cache),
                                 self.eval(node.rhs, bindings, cache))
        if isinstance(node, E.UnOp):
            return E.eval_unary(node.op,
                                self.eval(node.operand, bindings, cache))
        if isinstance(node, E.Select):
            cond = self.eval(node.cond, bindings, cache)
            branch = node.if_true if cond else node.if_false
            return self.eval(branch, bindings, cache)
        raise SimulationError(f"cannot evaluate {node!r} on the datapath")

    def _load(self, node: E.Load, bindings, cache):
        target = node.array
        if isinstance(target, Reg):
            return self.mem.reg(target).read()
        if isinstance(target, Sram):
            idxs = [int(self.eval(i, bindings, cache))
                    for i in node.indices]
            scratch = self.mem.scratch(target)
            buf = scratch.read_buffer(self.version)
            flat = 0
            for axis, idx in enumerate(idxs):
                if idx < 0 or idx >= buf.shape[axis]:
                    raise SimulationError(
                        f"scratchpad OOB: {target.name}[{idxs}] shape "
                        f"{buf.shape}")
                flat = flat * buf.shape[axis] + idx
            self.accesses.setdefault((target.name, id(node)),
                                     []).append(flat)
            return buf[tuple(idxs)].item()
        raise SimulationError(
            f"datapath cannot read {type(target).__name__} "
            f"{getattr(target, 'name', '?')!r}")

    # -- writes -------------------------------------------------------------------
    def write_sram(self, sram: Sram, idxs, value) -> int:
        """Write one element into the version buffer; returns flat addr."""
        scratch = self.mem.scratch(sram)
        buf = scratch.buffer(self.version)
        flat = 0
        for axis, idx in enumerate(idxs):
            if idx < 0 or idx >= buf.shape[axis]:
                raise SimulationError(
                    f"scratchpad OOB write: {sram.name}[{list(idxs)}] "
                    f"shape {buf.shape}")
            flat = flat * buf.shape[axis] + idx
        buf[tuple(int(i) for i in idxs)] = _np_dtype(sram.dtype)(value)
        scratch.note_write(self.version, flat)
        return flat

    def write_reg(self, reg: Reg, value) -> None:
        """Write a scalar register."""
        self.mem.reg(reg).write(value)
