"""Simulation statistics: cycles, busy counts, utilization, bandwidth."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict

from repro.arch.params import DEFAULT, PlasticineParams
from repro.arch.power import UnitActivity


@dataclass
class SimStats:
    """Counters accumulated over one simulated execution."""

    cycles: int = 0
    #: leaf name -> cycles that leaf was actively issuing
    busy_cycles: Dict[str, int] = field(default_factory=dict)
    #: leaf name -> physical PCUs it occupies (for weighting activity)
    pcus_of: Dict[str, int] = field(default_factory=dict)
    #: transfer name -> AGs it occupies
    ags_of: Dict[str, int] = field(default_factory=dict)
    #: scalar operations executed on PCU datapaths
    ops_executed: int = 0
    #: vector issues (one per cycle per active inner controller)
    vector_issues: int = 0
    #: cycles lost to scratchpad bank conflicts
    conflict_cycles: int = 0
    #: cycles lost to FIFO backpressure (producer found a FIFO full)
    fifo_stall_cycles: int = 0
    #: cycles a FIFO consumer starved on an empty, still-open FIFO
    fifo_empty_stall_cycles: int = 0
    #: cycles an AG could not issue because DRAM queues (or the
    #: coalescer) were full — a bandwidth, not latency, stall
    dram_stall_cycles: int = 0
    #: DRAM statistics snapshot (filled by the machine at the end)
    dram: Dict[str, int] = field(default_factory=dict)
    dram_busy_fraction: float = 0.0
    #: per-channel bandwidth utilization ("ch0" -> bursts/bytes/util,
    #: where util is the fraction of elapsed cycles the channel's data
    #: bus spent on this run's bursts); filled by the machine at the end
    dram_channels: Dict[str, Dict[str, float]] = field(
        default_factory=dict)

    def as_dict(self) -> dict:
        """Every counter as a plain nested dict (equivalence checks)."""
        return asdict(self)

    def same_as(self, other: "SimStats") -> bool:
        """Field-exact equality (the batch/sequential contract)."""
        return self.as_dict() == other.as_dict()

    def busy(self, leaf_name: str, cycles: int = 1) -> None:
        """Charge busy cycles to a leaf."""
        self.busy_cycles[leaf_name] = (
            self.busy_cycles.get(leaf_name, 0) + cycles)

    def activity(self, config,
                 params: PlasticineParams = DEFAULT) -> UnitActivity:
        """Convert counters into the power model's activity profile."""
        if self.cycles == 0:
            return UnitActivity()
        pcu_busy = sum(self.busy_cycles.get(name, 0) * npcus
                       for name, npcus in self.pcus_of.items())
        pcus_used = max(config.pcus_used, 1)
        pcu_activity = min(1.0, pcu_busy / (self.cycles * pcus_used))
        ag_busy = sum(self.busy_cycles.get(name, 0) * nags
                      for name, nags in self.ags_of.items())
        ags_used = max(config.ags_used, 1)
        ag_activity = min(1.0, ag_busy / (self.cycles * ags_used))
        pmu_activity = min(1.0, 0.5 * pcu_activity + 0.5 * ag_activity)
        return UnitActivity(
            pcus_used=config.pcus_used,
            pcu_activity=pcu_activity,
            pmus_used=config.pmus_used,
            pmu_activity=pmu_activity,
            ags_used=config.ags_used,
            ag_activity=ag_activity,
            coalescers_used=params.num_coalescing_units,
            coalescer_activity=self.dram_busy_fraction,
            switches_used=config.switches_used,
            switch_activity=pcu_activity * 0.8,
        )

    def seconds(self, clock_ghz: float = 1.0) -> float:
        """Wall-clock seconds at the given clock."""
        return self.cycles / (clock_ghz * 1e9)
