"""Backward-compatible re-export of the compiler->simulator contract.

The configuration types moved to :mod:`repro.bitstream.config` so the
compiler can emit them without importing the simulator package.  This
shim keeps every historical ``repro.sim.config`` import site working.
"""

from repro.bitstream.config import (AgAssignment, FabricConfig, LeafTiming,
                                    MemoryPlacement)

__all__ = ["AgAssignment", "FabricConfig", "LeafTiming", "MemoryPlacement"]
