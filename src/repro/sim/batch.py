"""Batched simulation: N instances of one compiled design, one pass.

Figure-7 sweeps, DSE, fuzz campaigns, and service traffic all simulate
the *same compiled structure* under different parameters.  Running those
instances independently re-evaluates every datapath expression N times,
and profiling shows expression evaluation is ~85% of simulated wall
time.  ``run_batch`` removes that redundancy without giving up
cycle-exactness:

* Instances are grouped into **cohorts** by their *functional* inputs
  (the DRAM data they run on).  Timing-only overrides — pipeline depth,
  network hops, banking, coalescer entries, DRAM queue depth — cannot
  change any architecturally visible value the datapath produces: the
  counter-chain enumeration order is fixed by the compiled chain, FIFO
  order is preserved under backpressure, and parent/child hand-off is
  in-order per leaf.  All members of a cohort therefore compute the
  same value stream.
* The first member of each cohort (the **leader**) runs normally while
  recording a columnar functional log per inner-compute activation:
  for every vector issue, the SRAM/register/hash writes it performed
  (struct-of-arrays: flat addresses and values as numpy arrays), the
  FIFO words it emitted, and the read/write address groups that price
  bank conflicts.
* Every other member (a **follower**) runs the *identical* cycle-level
  timing loop — scheduler, outer controllers, transfers, DRAM model,
  FIFO backpressure, stall attribution — but its inner-compute leaves
  replay the recorded effects instead of evaluating expressions.
  Conflict pricing is re-derived per instance from the recorded address
  groups, so ``banks`` overrides still reshape every stall.
* Followers step **jointly**: each instance's scheduler runs as a
  resumable span generator, and the driver always resumes the instance
  with the smallest next-wake cycle (a numpy masked argmin over the
  per-instance wake array, retired instances masked out).

Per-instance ``SimStats``, memory images, and stall attribution are
bit-identical to N sequential ``Machine.run`` calls; the equivalence
suite enforces that across the whole app registry and the fuzz corpus.
A leader that fails (deadlock, max-cycles, runaway bound) degrades
gracefully: its cohort's remaining members fall back to full solo runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dhdl.ir import InnerCompute
from repro.dram.model import DramModel
from repro.errors import ConfigError, DeadlockError, SimulationError
from repro.patterns.collections import _np_dtype
from repro.sim.leaves import InnerComputeSim
from repro.sim.machine import Machine
from repro.sim.scheduler import SCHEDULER_MODES
from repro.sim.stats import SimStats

#: overrides that only change *when* things happen, never *what* values
#: the datapath computes — cohort members may differ in these freely
TIMING_KEYS = frozenset({
    "stages", "pipeline_depth", "input_hops", "output_hops", "banks",
    "coalesce_entries", "dram_queue_depth", "watchdog", "max_cycles",
})

#: overrides that change the computed values; they split cohorts
FUNCTIONAL_KEYS = frozenset({"data"})


# ---------------------------------------------------------------------------
# Parameter handling
# ---------------------------------------------------------------------------


def normalize_params(entry: Optional[dict]) -> dict:
    """Validate one instance's override dict (None means defaults)."""
    if entry is None:
        entry = {}
    if not isinstance(entry, dict):
        raise ConfigError(
            f"batch params must be dicts, got {type(entry).__name__}")
    unknown = set(entry) - TIMING_KEYS - FUNCTIONAL_KEYS
    if unknown:
        raise ConfigError(
            f"unsupported batch override(s) {sorted(unknown)}; "
            f"timing: {sorted(TIMING_KEYS)}, "
            f"functional: {sorted(FUNCTIONAL_KEYS)}")
    if "stages" in entry and "pipeline_depth" in entry:
        raise ConfigError(
            "give either 'stages' or 'pipeline_depth', not both "
            "(they are aliases)")
    data = entry.get("data")
    if data is not None and not isinstance(data, dict):
        raise ConfigError("'data' override must map DRAM array names "
                          "to arrays")
    return entry


def cohort_key(entry: dict) -> Tuple:
    """Hashable digest of an entry's functional inputs.

    Instances with equal keys compute identical value streams and can
    share one leader's functional log.
    """
    data = entry.get("data")
    if not data:
        return ()
    parts = []
    for name in sorted(data):
        arr = np.asarray(data[name])
        parts.append((name, str(arr.dtype), tuple(arr.shape),
                      hashlib.sha256(arr.tobytes()).hexdigest()))
    return tuple(parts)


def _unpack(source) -> Tuple:
    """Accept a Bitstream, a (dhdl, config) pair, or a Machine-like."""
    if hasattr(source, "dhdl") and hasattr(source, "config"):
        return source.dhdl, source.config
    if isinstance(source, tuple) and len(source) == 2:
        return source
    raise ConfigError(
        f"cannot batch-run {type(source).__name__}; pass a Bitstream "
        "or a (dhdl, config) pair")


def _configured(config, ov: dict):
    """A FabricConfig with this instance's timing overrides applied."""
    depth = ov.get("pipeline_depth", ov.get("stages"))
    in_hops = ov.get("input_hops")
    out_hops = ov.get("output_hops")
    changes = {}
    if depth is not None or in_hops is not None or out_hops is not None:
        patch = {}
        if depth is not None:
            patch["pipeline_depth"] = max(1, int(depth))
        if in_hops is not None:
            patch["input_hops"] = max(0, int(in_hops))
        if out_hops is not None:
            patch["output_hops"] = max(0, int(out_hops))
        changes["leaf_timing"] = {
            name: replace(t, **patch)
            for name, t in config.leaf_timing.items()}
    if "banks" in ov:
        changes["banks_override"] = int(ov["banks"])
    if "coalesce_entries" in ov:
        changes["coalesce_entries"] = max(1, int(ov["coalesce_entries"]))
    return replace(config, **changes) if changes else config


def _override_dram(image, name: str, arr) -> None:
    buf = image.buffers.get(name)
    if buf is None:
        raise ConfigError(
            f"no DRAM array {name!r} to override; "
            f"have {sorted(image.buffers)}")
    flat = np.asarray(arr).ravel().astype(buf.dtype)
    if flat.size > buf.size:
        raise ConfigError(
            f"data override for {name!r} has {flat.size} words; "
            f"the array holds {buf.size}")
    buf[:] = 0
    buf[:flat.size] = flat


def instantiate(source, overrides: Optional[dict] = None,
                machine_cls=Machine, **machine_kwargs) -> Machine:
    """One Machine for ``source`` with an override dict applied.

    Shared by ``run_batch`` and the sequential reference side of the
    equivalence tests/fuzz oracle, so both sides are guaranteed to
    build identically configured instances.
    """
    dhdl, config = _unpack(source)
    ov = normalize_params(overrides)
    kwargs = dict(machine_kwargs)
    if "dram_queue_depth" in ov:
        kwargs["dram"] = DramModel(
            queue_depth=max(1, int(ov["dram_queue_depth"])))
    if "watchdog" in ov:
        kwargs["watchdog"] = int(ov["watchdog"])
    if "max_cycles" in ov:
        kwargs["max_cycles"] = int(ov["max_cycles"])
    machine = machine_cls(dhdl, _configured(config, ov), **kwargs)
    for name, arr in (ov.get("data") or {}).items():
        _override_dram(machine.image, name, arr)
    return machine


# ---------------------------------------------------------------------------
# The functional log (leader writes, followers replay)
# ---------------------------------------------------------------------------


class _ActivationLog:
    """Everything one inner-compute activation did, batch by batch."""

    __slots__ = ("batches", "finish")

    def __init__(self):
        self.batches: List[_RawBatch] = []
        self.finish: Optional[list] = None


class _FrozenBatch:
    """One vector issue's effects in columnar (struct-of-arrays) form."""

    __slots__ = ("lanes", "sram", "regs", "emits", "reads", "writes",
                 "price_memo")

    def __init__(self, lanes, sram, regs, emits, reads, writes):
        self.lanes = lanes
        #: per scratchpad: (name, flat addrs int64[], values dtype[], wm)
        self.sram = sram
        self.regs = regs
        self.emits = emits
        self.reads = reads
        self.writes = writes
        #: (kind, group index, banks) -> conflict cost, shared by every
        #: follower pricing this issue (pure in addrs + banking config)
        self.price_memo: dict = {}


class _RawBatch:
    """Recorded effect events for one vector issue (frozen lazily)."""

    __slots__ = ("lanes", "events", "reads", "writes", "_frozen")

    def __init__(self, lanes, events, reads, writes):
        self.lanes = lanes
        self.events = events
        self.reads = reads
        self.writes = writes
        self._frozen: Optional[_FrozenBatch] = None

    def frozen(self, mem_state) -> _FrozenBatch:
        """Columnar form, built once and shared by all followers."""
        if self._frozen is None:
            self._frozen = self._freeze(mem_state)
        return self._frozen

    def _freeze(self, mem_state) -> _FrozenBatch:
        per_mem: Dict[str, dict] = {}
        wm: Dict[str, int] = {}
        regs = []
        emits = []
        for ev in self.events:
            kind = ev[0]
            if kind == "s":            # SRAM write (tracks watermark)
                _, name, flat, value = ev
                bucket = per_mem.get(name)
                if bucket is None:
                    bucket = per_mem[name] = {}
                bucket[flat] = value
                if flat > wm.get(name, -1):
                    wm[name] = flat
            elif kind == "h":          # hash-table write (no watermark)
                _, name, key, value = ev
                bucket = per_mem.get(name)
                if bucket is None:
                    bucket = per_mem[name] = {}
                bucket[key] = value
            elif kind == "r":
                regs.append((ev[1], ev[2]))
            else:                      # "e"
                emits.append((ev[1], ev[2]))
        sram = []
        for name, bucket in per_mem.items():
            # duplicate addresses already collapsed last-write-wins by
            # the dict, so the vectorized fancy assignment is exact
            dtype = _np_dtype(mem_state.scratchpads[name].sram.dtype)
            flats = np.fromiter(bucket.keys(), dtype=np.int64,
                                count=len(bucket))
            values = np.array([dtype(v) for v in bucket.values()],
                              dtype=dtype)
            sram.append((name, flats, values, wm.get(name, -1)))
        return _FrozenBatch(self.lanes, tuple(sram), tuple(regs),
                            tuple(emits), self.reads, self.writes)


class _ReplayEnumerator:
    """Stand-in for ChainEnumerator: yields the recorded batches."""

    __slots__ = ("_batches", "_i")

    def __init__(self, batches):
        self._batches = batches
        self._i = 0

    def next_batch(self) -> Optional[_RawBatch]:
        if self._i >= len(self._batches):
            return None
        batch = self._batches[self._i]
        self._i += 1
        return batch


class _RecordingInnerComputeSim(InnerComputeSim):
    """The leader's inner compute: normal execution + effect logging."""

    def __init__(self, leaf, config, mem, stats, fifos, log):
        super().__init__(leaf, config, mem, stats, fifos)
        self._log = log
        self._act: Optional[_ActivationLog] = None
        self._sink: Optional[list] = None
        self._last_reads: tuple = ()
        self._last_writes: tuple = ()

    def _begin_body(self, bindings, version):
        self._act = _ActivationLog()
        self._log.setdefault(self.name, []).append(self._act)
        super()._begin_body(bindings, version)

    def _execute(self, batch):
        self._sink = []
        extra = super()._execute(batch)
        if extra is not None:
            # FIFO-full retries never reach the effect primitives, so a
            # None result always leaves an empty (discardable) sink
            self._act.batches.append(_RawBatch(
                batch.lanes, self._sink, self._last_reads,
                self._last_writes))
        return extra

    def _price(self, read_accesses, write_addrs):
        self._last_reads = tuple(
            (name, tuple(addrs))
            for (name, _site), addrs in read_accesses.items())
        self._last_writes = tuple(
            (name, tuple(addrs)) for name, addrs in write_addrs.items())
        return super()._price(read_accesses, write_addrs)

    def _apply_finals(self):
        self._sink = []
        super()._apply_finals()
        self._act.finish = self._sink

    def _write_sram(self, ctx, mem, idxs, value):
        flat = super()._write_sram(ctx, mem, idxs, value)
        self._sink.append(("s", mem.name, flat, value))
        return flat

    def _write_reg(self, ctx, mem, value):
        super()._write_reg(ctx, mem, value)
        self._sink.append(("r", mem.name, value))

    def _hash_store(self, mem, buf, key, value):
        super()._hash_store(mem, buf, key, value)
        # record the post-assignment cell: it carries the exact dtype
        # cast the replayed assignment must reproduce
        self._sink.append(("h", mem.name, int(key), buf.flat[key]))

    def _emit_values(self, fifo, values):
        super()._emit_values(fifo, values)
        self._sink.append(("e", fifo.decl.name, tuple(values)))


class _ReplayInnerComputeSim(InnerComputeSim):
    """A follower's inner compute: identical timing loop, zero
    expression evaluation — effects come from the leader's log."""

    def __init__(self, leaf, config, mem, stats, fifos, log):
        super().__init__(leaf, config, mem, stats, fifos)
        self._log = log
        self._cursor = 0
        self._act: Optional[_ActivationLog] = None

    def _begin_body(self, bindings, version):
        acts = self._log.get(self.name, ())
        if self._cursor >= len(acts):
            raise SimulationError(
                f"{self.name}: batch replay log exhausted at activation "
                f"{self._cursor} — followers may only vary timing "
                "parameters")
        self._act = acts[self._cursor]
        self._cursor += 1
        self._ctx_cur = None
        self._accs = {}
        self._enum = _ReplayEnumerator(self._act.batches)

    def _execute(self, batch):
        rec = batch.frozen(self.mem)
        if not self._check_fifo_room(rec.lanes):
            return None
        version = self._version
        scratchpads = self.mem.scratchpads
        for name, flats, values, wm in rec.sram:
            scratch = scratchpads[name]
            buf = scratch.buffer(version)
            buf.reshape(-1)[flats] = values
            if wm >= 0:
                scratch.note_write(version, wm)
        registers = self.mem.registers
        for name, value in rec.regs:
            registers[name].write(value)
        fifos = self.fifos
        for name, values in rec.emits:
            fifos[name].push(list(values))
        # conflict pricing is *not* replayed: it is recomputed from the
        # recorded address groups against this instance's banking, so a
        # banks override reshapes every stall exactly as a solo run
        # (memoized per banks value — the cost is pure in the addresses
        # and banking config, only the counter charges are per instance)
        extra = 0
        memo = rec.price_memo
        for gi, (name, addrs) in enumerate(rec.reads):
            scratch = scratchpads[name]
            key = (0, gi, scratch.banks)
            cost = memo.get(key)
            if cost is None:
                cost = memo[key] = scratch.read_extra(addrs)
            scratch.account_read(len(addrs), cost)
            if cost > extra:
                extra = cost
        for gi, (name, addrs) in enumerate(rec.writes):
            scratch = scratchpads[name]
            key = (1, gi, scratch.banks)
            cost = memo.get(key)
            if cost is None:
                cost = memo[key] = scratch.write_extra(addrs)
            scratch.account_write(len(addrs), cost)
            if cost > extra:
                extra = cost
        self.stats.conflict_cycles += extra
        self.stats.ops_executed += self._ops_per_lane * rec.lanes
        return extra

    def _apply_finals(self):
        version = self._version
        for ev in self._act.finish or ():
            kind = ev[0]
            if kind == "s":
                _, name, flat, value = ev
                scratch = self.mem.scratchpads[name]
                buf = scratch.buffer(version)
                buf.reshape(-1)[flat] = _np_dtype(
                    scratch.sram.dtype)(value)
                scratch.note_write(version, flat)
            elif kind == "r":
                self.mem.registers[ev[1]].write(ev[2])
            elif kind == "h":
                _, name, key, value = ev
                buf = self.mem.scratchpads[name].buffer(version)
                buf.flat[key] = value
            else:
                self.fifos[ev[1]].push(list(ev[2]))


class _RecordingMachine(Machine):
    """A Machine whose inner computes log their functional effects."""

    def __init__(self, dhdl, config, log, **kwargs):
        self._batch_log = log
        super().__init__(dhdl, config, **kwargs)

    def _build_leaf(self, ctrl):
        if isinstance(ctrl, InnerCompute):
            return _RecordingInnerComputeSim(
                ctrl, self.config, self.mem, self.stats, self.fifos,
                self._batch_log)
        return super()._build_leaf(ctrl)


class _ReplayMachine(Machine):
    """A Machine whose inner computes replay a leader's log."""

    def __init__(self, dhdl, config, log, **kwargs):
        self._batch_log = log
        super().__init__(dhdl, config, **kwargs)

    def _build_leaf(self, ctrl):
        if isinstance(ctrl, InnerCompute):
            return _ReplayInnerComputeSim(
                ctrl, self.config, self.mem, self.stats, self.fifos,
                self._batch_log)
        return super()._build_leaf(ctrl)


# ---------------------------------------------------------------------------
# The joint driver
# ---------------------------------------------------------------------------


@dataclass
class InstanceResult:
    """Outcome of one batch member, in input order."""

    index: int
    params: dict
    role: str = "solo"                # solo | leader | replay
    machine: Optional[Machine] = None
    stats: Optional[SimStats] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchResult:
    """Per-instance results plus batching diagnostics."""

    instances: List[InstanceResult] = field(default_factory=list)
    cohorts: int = 0
    replayed: int = 0

    def __iter__(self):
        return iter(self.instances)

    def __len__(self):
        return len(self.instances)

    def __getitem__(self, i):
        return self.instances[i]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.instances)

    def stats_list(self) -> List[Optional[SimStats]]:
        return [r.stats for r in self.instances]


def _spans_for(machine: Machine, mode: str):
    """A resumable span generator running this machine to completion."""
    if mode == "dense":
        from repro.sim.scheduler import dense_spans
        return dense_spans(machine, machine.max_cycles)
    from repro.sim.scheduler import EventScheduler
    sched = EventScheduler(machine)
    machine.scheduler_stats = sched
    return sched.spans(machine.max_cycles)


def _drive_jointly(jobs: List[Tuple[InstanceResult, Machine]],
                   mode: str) -> None:
    """Step many instances together, always resuming the one with the
    smallest next-wake cycle; retired/errored instances are masked out
    of the wake array."""
    n = len(jobs)
    if n == 0:
        return
    gens = [_spans_for(machine, mode) for _, machine in jobs]
    next_wake = np.zeros(n, dtype=np.int64)
    live = np.ones(n, dtype=bool)
    retired = np.iinfo(np.int64).max
    while True:
        masked = np.where(live, next_wake, retired)
        i = int(np.argmin(masked))
        if masked[i] == retired:
            break
        slot, machine = jobs[i]
        try:
            next_wake[i] = next(gens[i])
        except StopIteration:
            live[i] = False
            slot.stats = machine.stats
        except (SimulationError, DeadlockError) as err:
            live[i] = False
            slot.error = f"{type(err).__name__}: {err}"


def run_batch(source, param_list, scheduler: str = "event",
              tracer_factory=None) -> BatchResult:
    """Simulate N instances of one compiled design in one pass.

    ``source`` — a :class:`~repro.bitstream.artifact.Bitstream` (or a
    ``(dhdl, config)`` pair); ``param_list`` — one override dict per
    instance (``None``/``{}`` for the as-compiled configuration), with
    keys from :data:`TIMING_KEYS` and :data:`FUNCTIONAL_KEYS`.
    ``tracer_factory(index, params)`` may supply a per-instance tracer.

    Returns a :class:`BatchResult` whose per-instance stats, memory
    images, and stall attribution are bit-identical to sequential
    ``Machine.run`` calls with the same overrides.
    """
    if scheduler not in SCHEDULER_MODES:
        raise SimulationError(
            f"unknown scheduler {scheduler!r}; one of: "
            f"{', '.join(SCHEDULER_MODES)}")
    dhdl_config = _unpack(source)
    entries = [normalize_params(p) for p in param_list]
    results = [InstanceResult(i, param_list[i] if param_list[i] else {})
               for i in range(len(entries))]
    if not entries:
        return BatchResult()

    def kwargs_for(i):
        kw = {"scheduler": scheduler}
        if tracer_factory is not None:
            kw["tracer"] = tracer_factory(i, entries[i])
        return kw

    # group into cohorts (input order preserved within each)
    cohorts: Dict[Tuple, List[int]] = {}
    for i, entry in enumerate(entries):
        cohorts.setdefault(cohort_key(entry), []).append(i)

    # phase A: leaders (recording) and singletons (plain), jointly
    logs: Dict[Tuple, dict] = {}
    phase_a: List[Tuple[InstanceResult, Machine]] = []
    for key, members in cohorts.items():
        lead = members[0]
        if len(members) == 1:
            machine = instantiate(dhdl_config, entries[lead],
                                  **kwargs_for(lead))
        else:
            logs[key] = {}
            machine = instantiate(
                dhdl_config, entries[lead], machine_cls=_RecordingMachine,
                log=logs[key], **kwargs_for(lead))
            results[lead].role = "leader"
        results[lead].machine = machine
        phase_a.append((results[lead], machine))
    _drive_jointly(phase_a, scheduler)

    # phase B: followers replay their leader's log; cohorts whose
    # leader failed fall back to full solo runs
    replayed = 0
    phase_b: List[Tuple[InstanceResult, Machine]] = []
    for key, members in cohorts.items():
        leader_ok = results[members[0]].ok
        for i in members[1:]:
            if leader_ok:
                machine = instantiate(
                    dhdl_config, entries[i], machine_cls=_ReplayMachine,
                    log=logs[key], **kwargs_for(i))
                results[i].role = "replay"
                replayed += 1
            else:
                machine = instantiate(dhdl_config, entries[i],
                                      **kwargs_for(i))
            results[i].machine = machine
            phase_b.append((results[i], machine))
    _drive_jointly(phase_b, scheduler)

    return BatchResult(instances=results, cohorts=len(cohorts),
                       replayed=replayed)
