"""The DRAM image: flat word-addressable contents of off-chip memory.

The timing of DRAM traffic is modelled by :mod:`repro.dram`; the *data*
lives here.  Every pattern array is laid out row-major at a base byte
address chosen by the compiler; transfers copy words between this image
and scratchpad buffers when their bursts complete.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.dhdl.analysis import assign_bases  # noqa: F401  (re-export)
from repro.dhdl.memory import DramRef
from repro.errors import SimulationError
from repro.patterns.collections import _np_dtype


class DramImage:
    """Word-granularity backing store for all DRAM collections."""

    def __init__(self, drams: Iterable[DramRef], base: Dict[str, int]):
        self.base = dict(base)
        self.buffers: Dict[str, np.ndarray] = {}
        self._by_name: Dict[str, DramRef] = {}
        for ref in drams:
            if ref.name not in self.base:
                raise SimulationError(
                    f"DRAM array {ref.name!r} has no base address")
            if self.base[ref.name] % 4:
                raise SimulationError(
                    f"DRAM base of {ref.name!r} is not word aligned")
            words = ref.words()
            np_dtype = _np_dtype(ref.dtype)
            if ref.array.data is not None:
                flat = np.zeros(words, dtype=np_dtype)
                src = ref.array.data.ravel().astype(np_dtype)
                flat[:src.size] = src
                self.buffers[ref.name] = flat
            else:
                self.buffers[ref.name] = np.zeros(words, dtype=np_dtype)
            self._by_name[ref.name] = ref

    # -- word access --------------------------------------------------------------
    def read_words(self, name: str, word_off: int, count: int) -> np.ndarray:
        """Read a contiguous span of words from one array."""
        buf = self.buffers[name]
        if word_off < 0 or word_off + count > buf.size:
            raise SimulationError(
                f"DRAM OOB read {name}[{word_off}:{word_off + count}] "
                f"(size {buf.size})")
        return buf[word_off:word_off + count]

    def write_words(self, name: str, word_off: int, values) -> None:
        """Write a contiguous span of words into one array."""
        buf = self.buffers[name]
        values = np.asarray(values, dtype=buf.dtype)
        if word_off < 0 or word_off + values.size > buf.size:
            raise SimulationError(
                f"DRAM OOB write {name}[{word_off}:"
                f"{word_off + values.size}] (size {buf.size})")
        buf[word_off:word_off + values.size] = values

    def byte_addr(self, name: str, word_off: int) -> int:
        """Physical byte address of one word of an array."""
        return self.base[name] + 4 * word_off

    def scalar(self, name: str):
        """Value of a 0-d collection."""
        return self.buffers[name][0].item()

    def as_array(self, name: str) -> np.ndarray:
        """The logical array view (reshaped to its static shape)."""
        ref = self._by_name[name]
        buf = self.buffers[name]
        if ref.array.is_dynamic or ref.array.shape == ():
            return buf
        return buf.reshape(ref.array.shape)

    # -- integrity ----------------------------------------------------------------
    def checksums(self) -> Dict[str, int]:
        """CRC32 of every array's raw bytes (end-to-end fault detection).

        Two images of the same program agree on every checksum iff they
        are bit-identical, so comparing a run's checksums against a
        known-good golden run detects silent data corruption.
        """
        import zlib
        return {name: zlib.crc32(buf.tobytes())
                for name, buf in sorted(self.buffers.items())}

    def corrupt_word(self, name: str, word: int, xor_mask: int) -> None:
        """Bit-flip one word in place (fault injection).

        Operates on the raw 32-bit storage so float arrays corrupt the
        way a real DRAM bit flip would (no value-space rounding).
        """
        buf = self.buffers[name]
        if buf.size == 0:
            return
        word = word % buf.size
        if buf.dtype.itemsize == 4:
            view = buf.view(np.uint32)
            view[word] ^= np.uint32(xor_mask & 0xFFFFFFFF)
        else:
            view = buf.view(np.uint8)
            view[word * buf.dtype.itemsize] ^= np.uint8(xor_mask & 0xFF)


