"""Multi-tenant fabric: N compiled artifacts co-resident on one chip.

One :class:`Fabric` hosts several tenant :class:`~repro.sim.machine.
Machine` instances — each configured into a *disjoint* rectangular
region of the grid by the tenancy packer — and steps them jointly
against a single shared :class:`~repro.dram.model.DramModel`.  Compute
never interferes (disjoint PCUs/PMUs/switches by construction); the
DRAM channels are the shared resource, so every request is stamped with
its tenant and the model keeps per-tenant bandwidth, stall and
row-buffer accounting.

Equivalence invariant
---------------------
A tenant running *alone* on a Fabric is bit-identical to a solo
``Machine.run``: the per-cycle loop below is exactly the dense
reference loop (``repro.sim.scheduler.dense_spans``) specialised to one
machine — same tick order, same retirement sweep, same watchdog
cadence — and tenant 0 keeps its artifact's natural DRAM layout, so
the address stream (and hence FR-FCFS timing) is unchanged.  The test
suite asserts this for every registry app: identical ``SimStats``,
DRAM image and stall attribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dhdl.ir import DhdlProgram
from repro.dram.model import DramModel
from repro.errors import SimulationError
from repro.sim.config import FabricConfig
from repro.sim.dram_image import assign_bases
from repro.sim.machine import Machine
from repro.sim.stats import SimStats
from repro.trace.tracer import Tracer


def _regions_overlap(a, b) -> bool:
    """Axis-aligned rectangle intersection on (col0, row0, cols, rows)."""
    ac, ar, aw, ah = a
    bc, br, bw, bh = b
    return (ac < bc + bw and bc < ac + aw
            and ar < br + bh and br < ar + ah)


class Tenant:
    """One co-resident application: its machine plus fabric-side state."""

    def __init__(self, tid: int, name: str, machine: Machine,
                 priority: int = 1):
        self.id = tid
        self.name = name
        self.machine = machine
        #: QoS arbitration weight on the shared DRAM channels
        self.priority = priority
        self.done = False
        #: cycle at which the root controller completed (None while busy)
        self.finish_cycle: Optional[int] = None
        self._last_key = None
        self._last_progress = 0

    @property
    def stats(self) -> SimStats:
        return self.machine.stats

    def __repr__(self):
        state = f"done@{self.finish_cycle}" if self.done else "running"
        return f"Tenant({self.id}:{self.name}, {state})"


class Fabric:
    """A chip shared by several tenant machines.

    Build with :meth:`add_tenant` (in packing order: tenant 0 keeps its
    natural DRAM layout; later tenants are relocated past it), then
    :meth:`run` to completion.  Each tenant retires on its own root's
    completion and keeps its own :class:`SimStats`; the fabric keeps
    running until every tenant is done.
    """

    #: tenant DRAM slices start on a full channel-interleave stride so
    #: relocation never changes how a tenant's bursts stripe across
    #: channels (channel = burst % channels is offset-invariant)
    _SLICE_ALIGN_DEFAULT = None  # computed from geometry in __init__

    def __init__(self, dram: Optional[DramModel] = None,
                 watchdog: int = 50_000,
                 max_cycles: int = 20_000_000):
        self.dram = dram or DramModel()
        self.watchdog = watchdog
        self.max_cycles = max_cycles
        self.tenants: List[Tenant] = []
        self.cycle = 0
        geometry = self.dram.geometry
        self._slice_align = geometry.row_bytes * geometry.channels
        self._addr_cursor = 0

    # -- construction ------------------------------------------------------------
    def add_tenant(self, dhdl: DhdlProgram, config: FabricConfig,
                   name: Optional[str] = None,
                   tracer: Optional[Tracer] = None,
                   fault_plan=None,
                   fault_sites: Optional[Dict[str, list]] = None,
                   priority: int = 1) -> Tenant:
        """Admit one compiled artifact as the next tenant.

        Tenants after the first must carry a placement ``region`` (the
        tenancy packer emits these) and regions must be pairwise
        disjoint — overlapping units would silently share datapaths.

        ``priority`` (>= 1) is the tenant's weight in the shared DRAM
        channels' QoS arbitration.  Weighted FR-FCFS only engages when
        tenants carry *different* priorities; a fabric of equal
        priorities — any value — runs the bit-identical plain FR-FCFS
        scheduler (asserted registry-wide, like the lone-tenant
        invariant).
        """
        if priority < 1:
            raise SimulationError(
                f"tenant priority must be >= 1, got {priority}")
        tid = len(self.tenants)
        if tid > 0:
            regions = [t.machine.config.region for t in self.tenants]
            regions.append(config.region)
            for i, region in enumerate(regions):
                if region is None:
                    raise SimulationError(
                        "multi-tenant fabrics require region-constrained"
                        f" artifacts; tenant {i} was compiled for the"
                        " full grid (recompile with region=)")
            for t, other in zip(self.tenants, regions[:-1]):
                if _regions_overlap(other, config.region):
                    raise SimulationError(
                        f"tenant regions overlap: {t.name} at {other} vs"
                        f" new tenant at {config.region}")
        name = name or f"t{tid}"
        taken = {t.name for t in self.tenants}
        if name in taken:
            k = 1
            while f"{name}#{k}" in taken:
                k += 1
            name = f"{name}#{k}"
        natural = config.dram_base or assign_bases(dhdl.drams)
        span = self._layout_span(dhdl, natural)
        if tid == 0:
            base = dict(natural)  # offset 0: solo-identical addresses
        else:
            align = self._slice_align
            offset = -(-self._addr_cursor // align) * align
            base = {k: v + offset for k, v in natural.items()}
            span += offset
        self._addr_cursor = max(self._addr_cursor, span)
        machine = Machine(dhdl, config, dram=self.dram,
                          watchdog=self.watchdog, tracer=tracer,
                          max_cycles=self.max_cycles,
                          tenant=tid, dram_base=base,
                          fault_plan=fault_plan,
                          fault_sites=fault_sites,
                          tenant_name=name)
        tenant = Tenant(tid, name, machine, priority=priority)
        self.dram.set_tenant_weight(tid, priority)
        self.tenants.append(tenant)
        return tenant

    @staticmethod
    def _layout_span(dhdl: DhdlProgram, base: Dict[str, int]) -> int:
        """One past the highest byte address the layout touches."""
        end = 0
        for ref in dhdl.drams:
            end = max(end, base[ref.name] + 4 * ref.words())
        return end

    # -- execution ---------------------------------------------------------------
    def run(self, max_cycles: Optional[int] = None
            ) -> Dict[str, SimStats]:
        """Step all tenants to completion; per-tenant stats by name.

        The per-cycle order mirrors the dense reference loop exactly:
        memory system first, then every active tenant's controllers
        (outers before leaves), then the scratchpad retirement sweep,
        then per-tenant progress/watchdog checks.  ``self.dram.tenant``
        is focused on each tenant around its tick pass so every burst it
        submits is stamped for attribution.
        """
        if not self.tenants:
            raise SimulationError("fabric has no tenants")
        limit = max_cycles if max_cycles is not None else self.max_cycles
        dram = self.dram
        live = [t for t in self.tenants if not t.done]
        for tenant in live:
            tenant.machine.root.start({}, ())
        cycle = self.cycle
        while live:
            cycle += 1
            if cycle > limit:
                for tenant in live:
                    faults = tenant.machine.faults
                    if faults is not None and faults.fired:
                        raise faults.fault_error(
                            f"exceeded max_cycles={limit} with "
                            f"{[t.name for t in live]} still running",
                            cycle=cycle)
                raise SimulationError(
                    f"exceeded max_cycles={limit} with "
                    f"{[t.name for t in live]} still running")
            for tenant in live:
                machine = tenant.machine
                machine.cycle = cycle
                faults = machine.faults
                if faults is not None and faults.next_cycle <= cycle:
                    faults.apply(cycle)
                if machine.tracer is not None:
                    machine.tracer.begin_cycle(cycle)
            dram.tick()
            dram.deliver()
            for tenant in live:
                dram.tenant = tenant.id
                tenant.machine.tick_units(cycle)
            dram.tenant = None
            if cycle % 256 == 0:
                for tenant in live:
                    tenant.machine.mem.retire_old()
            finished = False
            for tenant in live:
                machine = tenant.machine
                key = machine._progress_key()
                if key != tenant._last_key:
                    tenant._last_key = key
                    tenant._last_progress = cycle
                    if machine.tracer is not None:
                        machine.tracer.progress(cycle)
                elif cycle - tenant._last_progress > machine.watchdog:
                    machine._raise_deadlock(tenant._last_progress)
                if machine.tracer is not None:
                    machine.tracer.end_cycle()
                if not machine.root.busy:
                    tenant.done = True
                    tenant.finish_cycle = cycle
                    machine._epilogue()
                    finished = True
            if finished:
                live = [t for t in live if not t.done]
        self.cycle = cycle
        return {t.name: t.machine.stats for t in self.tenants}

    # -- aggregate views ----------------------------------------------------------
    def channel_util(self) -> Dict[str, Dict[str, float]]:
        """Whole-fabric per-channel utilization over the run so far."""
        return self.dram.channel_util(None, self.cycle)

    def tenant_channel_util(self, tenant: Tenant
                            ) -> Dict[str, Dict[str, float]]:
        """One tenant's share of each channel over the whole run."""
        return self.dram.channel_util(tenant.id, self.cycle)

    def qos_summary(self) -> Dict[str, dict]:
        """Per-tenant QoS view: weight + arbitration outcomes.

        ``arb_won`` / ``arb_deferred`` count contested weighted
        arbitration rounds summed over all channels; both stay 0 (and
        ``weighted`` False) when priorities are uniform and the
        channels run plain FR-FCFS.
        """
        out: Dict[str, dict] = {}
        for tenant in self.tenants:
            won = deferred = 0
            for channel in self.dram.channels:
                arb = channel.arb_stats.get(tenant.id)
                if arb is not None:
                    won += arb["arb_won"]
                    deferred += arb["arb_deferred"]
            out[tenant.name] = {
                "priority": tenant.priority,
                "arb_won": won,
                "arb_deferred": deferred,
                "finish_cycle": tenant.finish_cycle,
            }
        return {"weighted": self.dram.weighted, "tenants": out}
