"""FIFO simulation for streaming controllers.

FIFOs carry words between streaming siblings (and into StreamStore
drains).  ``eos`` marks end-of-stream: the producer closes the FIFO when
its iteration space is exhausted, letting consumers terminate.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.dhdl.memory import FifoDecl
from repro.errors import SimulationError
from repro.trace.events import EventKind


class FifoSim:
    """Runtime state of one FIFO declaration."""

    def __init__(self, decl: FifoDecl, lanes: int = 16):
        self.decl = decl
        #: capacity in words (vector FIFOs hold `depth` vectors)
        self.capacity = decl.depth * (lanes if decl.vector else 1)
        self.items: deque = deque()
        self.eos = False
        self.pushed = 0
        self.popped = 0
        self.full_stalls = 0
        self.empty_stalls = 0
        #: attached by the machine when tracing is enabled
        self.trace = None
        #: attached by the event scheduler: notified on every state
        #: change so units parked on this FIFO can be re-armed
        self.sched = None

    @property
    def size(self) -> int:
        """Words currently queued."""
        return len(self.items)

    @property
    def free(self) -> int:
        """Words of remaining capacity."""
        return self.capacity - len(self.items)

    @property
    def drained(self) -> bool:
        """True when the stream is closed and empty."""
        return self.eos and not self.items

    def can_push(self, count: int = 1) -> bool:
        """Room for ``count`` more words?"""
        return self.free >= count

    def push(self, values: List) -> None:
        """Append words (caller must have checked capacity)."""
        if self.eos:
            raise SimulationError(
                f"push to closed FIFO {self.decl.name!r}")
        if not self.can_push(len(values)):
            raise SimulationError(f"FIFO {self.decl.name!r} overflow")
        self.items.extend(values)
        self.pushed += len(values)
        if self.trace is not None:
            self.trace.emit(EventKind.FIFO_PUSH, self.decl.name,
                            (len(values), len(self.items)))
        if self.sched is not None:
            self.sched.fifo_event(self)

    def pop(self, count: int = 1) -> List:
        """Remove up to ``count`` words (may return fewer)."""
        out = []
        while self.items and len(out) < count:
            out.append(self.items.popleft())
        self.popped += len(out)
        if out and self.trace is not None:
            self.trace.emit(EventKind.FIFO_POP, self.decl.name,
                            (len(out), len(self.items)))
        if out and self.sched is not None:
            self.sched.fifo_event(self)
        return out

    def close(self) -> None:
        """Signal end-of-stream."""
        self.eos = True
        if self.sched is not None:
            self.sched.fifo_event(self)

    def reopen(self) -> None:
        """Reset for the next activation (FIFOs are reused per parent
        iteration)."""
        if self.items:
            raise SimulationError(
                f"reopening non-empty FIFO {self.decl.name!r}")
        self.eos = False
        if self.sched is not None:
            self.sched.fifo_event(self)

    def __repr__(self):
        return (f"FifoSim({self.decl.name}, {self.size}/{self.capacity}"
                f"{', eos' if self.eos else ''})")
