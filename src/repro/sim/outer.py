"""Outer-controller scheduling: tokens, credits, and streaming.

Implements Section 3.5 of the paper over :class:`NodeSim` children:

* **sequential** — one live iteration; children start in dependency order
  within it (tokens), the next iteration starts when everything finished;
  optional early exit when a register reads zero.
* **coarse-grained pipeline** — up to ``window`` live iterations; a child
  starts iteration *k* once its producers finished *k* (tokens) and no
  consumer of its outputs lags more than the intermediate memory's
  N-buffer depth (credits).
* **streaming** — all children of an iteration start together and
  communicate through FIFOs; backpressure is the FIFOs' fullness.

A physical unit executes one activation at a time, so a single child
never overlaps its own iterations — overlap happens *across* children,
exactly like the paper's hardware.

Memory versions are hierarchical tuples ``(k0, c0, k1, c1, ...)`` of
(iteration, child-index) pairs down the controller tree; lexicographic
order equals production order, so a reader's "newest version <= mine"
rule sees exactly the writes that architecturally precede it — including
nested tile-loop accumulation read by a scope-level store, while a
pipelined producer's *next* iteration stays invisible (N-buffering).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dhdl.control import Scheme
from repro.dhdl.ir import OuterController
from repro.errors import SimulationError
from repro.sim.counters import ChainEnumerator
from repro.sim.datapath import LaneContext
from repro.sim.fifo import FifoSim
from repro.sim.leaves import NodeSim
from repro.sim.scheduler import EMPTY_PARK, Park
from repro.sim.scratchpad import MemoryState
from repro.trace.events import EventKind, StallCause


class DepEdge:
    """Producer -> consumer dependency through one memory."""

    def __init__(self, producer: int, consumer: int, mem_name: str,
                 credits: int):
        self.producer = producer
        self.consumer = consumer
        self.mem_name = mem_name
        self.credits = max(1, credits)

    def __repr__(self):
        return (f"DepEdge({self.producer}->{self.consumer} via "
                f"{self.mem_name}, M={self.credits})")


class _IterState:
    """One in-flight iteration of an outer controller."""

    __slots__ = ("k", "bindings", "version", "status")

    def __init__(self, k: int, bindings: dict, version: tuple,
                 num_children: int):
        self.k = k
        self.bindings = bindings
        self.version = version
        self.status = ["pending"] * num_children


class OuterControllerSim(NodeSim):
    """Scheduler for one outer controller's children."""

    def __init__(self, ctrl: OuterController, children: Sequence[NodeSim],
                 edges: Sequence[DepEdge], mem: MemoryState,
                 fifos_inside: Sequence[FifoSim] = ()):
        self.ctrl = ctrl
        self.name = ctrl.name
        self.children = list(children)
        self.edges = list(edges)
        self.mem = mem
        self.fifos_inside = list(fifos_inside)
        self.leaf_names = tuple(name for child in self.children
                                for name in child.leaf_names)
        #: attached by the machine when tracing is enabled
        self.trace = None
        #: attached by the event scheduler; None under the dense loop
        self._sched = None
        #: park descriptor the last tick produced (event scheduler only)
        self._park = None
        #: wait marks the current tick emitted (collected for the park)
        self._park_marks: Optional[List] = None
        self._active = False
        self._enum: Optional[ChainEnumerator] = None
        self._live: List[_IterState] = []
        self._next_k = 0
        self._completed = [0] * len(self.children)
        self._stopped = False
        self._base_bindings: dict = {}
        # precompute per-child producer and consumer edges
        self._producers: Dict[int, List[DepEdge]] = {}
        self._consumers: Dict[int, List[DepEdge]] = {}
        for edge in self.edges:
            self._consumers.setdefault(edge.producer, []).append(edge)
            self._producers.setdefault(edge.consumer, []).append(edge)
        if ctrl.scheme is Scheme.SEQUENTIAL:
            self._window = 1
        elif ctrl.scheme is Scheme.STREAMING:
            self._window = 1
        else:
            depth = max((e.credits for e in self.edges), default=2)
            self._window = max(2, min(depth + 1, len(self.children) + 1))

    @property
    def busy(self) -> bool:
        return self._active

    # -- activation ---------------------------------------------------------------
    def start(self, bindings: dict, version: int) -> None:
        if self._active:
            raise SimulationError(f"{self.name}: started while busy")
        self._active = True
        self._base_bindings = dict(bindings)
        self._base_version = tuple(version)
        self._live = []
        self._next_k = 0
        self._completed = [0] * len(self.children)
        self._stopped = False
        if self.ctrl.chain is not None:
            ctx = LaneContext(self.mem, version)

            def evaluate(expr, bnd):
                return ctx.eval(expr, bnd, {})

            self._enum = ChainEnumerator(self.ctrl.chain, evaluate,
                                         bindings)
        else:
            self._enum = None
            self._single_pending = True

    def _next_iteration(self) -> Optional[dict]:
        """Bindings for the next iteration, or None when exhausted."""
        if self._stopped:
            return None
        if self._enum is None:
            if getattr(self, "_single_pending", False):
                self._single_pending = False
                return dict(self._base_bindings)
            return None
        batch = self._enum.next_batch()
        if batch is None:
            return None
        if batch.lanes != 1:
            raise SimulationError(
                f"{self.name}: outer counter chains must iterate one "
                f"step at a time (par=1)")
        return batch.lane_bindings[0]

    # -- per-cycle ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        if not self._active:
            return
        self._materialize()
        if not self._live:
            self._active = False
            for fifo in self.fifos_inside:
                if fifo.items:
                    raise SimulationError(
                        f"{self.name}: FIFO {fifo.decl.name!r} not "
                        f"drained at controller completion")
            return
        if self.ctrl.scheme is Scheme.STREAMING:
            self._tick_streaming()
        else:
            self._tick_tokened()

    def _materialize(self) -> None:
        while len(self._live) < self._window:
            bindings = self._next_iteration()
            if bindings is None:
                break
            version = self._base_version + (self._next_k,)
            self._live.append(_IterState(self._next_k, bindings, version,
                                         len(self.children)))
            self._next_k += 1
            if self.ctrl.scheme is Scheme.STREAMING:
                for fifo in self.fifos_inside:
                    fifo.reopen()

    def _can_start(self, child_idx: int, it: _IterState) -> bool:
        # tokens: all producers done for this iteration
        for edge in self._producers.get(child_idx, ()):
            if it.status[edge.producer] != "done":
                return False
        # credits: consumers must not lag beyond the buffer depth
        for edge in self._consumers.get(child_idx, ()):
            if it.k - self._completed[edge.consumer] >= edge.credits:
                return False
        return True

    def _tick_tokened(self) -> None:
        trace = self.trace
        sched = self._sched
        if sched is not None:
            self._park_marks = [] if trace is not None else None
        moved = False
        finished: List[_IterState] = []
        for it in self._live:
            for idx, child in enumerate(self.children):
                state = it.status[idx]
                if state == "running":
                    if not child.busy:
                        it.status[idx] = "done"
                        self._completed[idx] += 1
                        moved = True
                        if trace is not None:
                            trace.emit(EventKind.CHILD_DONE, self.name,
                                       (child.name, it.k))
                elif state == "pending":
                    if child.busy:
                        continue  # unit occupied by an earlier iteration
                    if self._earlier_pending(idx, it.k):
                        # in-order per child: effectively a token wait on
                        # the child's own earlier iteration
                        if trace is not None:
                            self._mark_wait(child, StallCause.TOKEN_WAIT)
                        continue
                    if self._can_start(idx, it):
                        child.start({**it.bindings}, it.version + (idx,))
                        it.status[idx] = "running"
                        moved = True
                        if sched is not None:
                            sched.node_started(child)
                        if trace is not None:
                            trace.emit(EventKind.CHILD_START, self.name,
                                       (child.name, it.k))
                    elif trace is not None:
                        self._mark_wait(child, self._wait_cause(idx, it))
            if all(s == "done" for s in it.status):
                finished.append(it)
        for it in finished:
            moved = True
            self._live.remove(it)
            self._after_iteration(it)
        if sched is not None:
            if not moved:
                # Every blocking condition above (unit occupied,
                # in-order token, producer token, consumer credit)
                # clears only when a child of this controller
                # completes, which wakes us.
                marks = self._park_marks
                self._park = (Park(marks=tuple(marks)) if marks
                              else EMPTY_PARK)
            else:
                # even a productive tick can park when the *next* tick
                # provably repeats
                self._park = self._predict_park()

    def _predict_park(self) -> Optional[Park]:
        """Park decision at the end of a productive tick.

        Re-runs the start/done decision logic read-only to see whether
        the next tick could move anything *assuming no child completes
        first*.  Every condition checked (child busy-ness, in-order
        tokens, producer tokens, consumer credits) changes only when a
        child of this controller starts (our own tick) or completes
        (which always wakes us through the parent map), so a "nothing
        can move" verdict stays valid until a wakeup — even when a
        child finishes later in this same cycle's leaf pass.  Returns
        the park replaying the wait marks the next tick would emit, or
        None when a transition is still reachable.
        """
        if len(self._live) < self._window:
            # the next tick may materialize a fresh iteration whose
            # children could start
            return None
        collect = [] if self.trace is not None else None
        for it in self._live:
            status = it.status
            for idx, child in enumerate(self.children):
                state = status[idx]
                if state == "running":
                    if not child.busy:
                        return None     # done-transition next tick
                elif state == "pending":
                    if child.busy:
                        continue
                    if self._earlier_pending(idx, it.k):
                        if collect is not None:
                            for name in child.leaf_names:
                                collect.append(
                                    (name, StallCause.TOKEN_WAIT))
                        continue
                    if self._can_start(idx, it):
                        return None     # start-transition next tick
                    if collect is not None:
                        cause = self._wait_cause(idx, it)
                        for name in child.leaf_names:
                            collect.append((name, cause))
        return Park(marks=tuple(collect)) if collect else EMPTY_PARK

    def _wait_cause(self, child_idx: int, it: _IterState) -> StallCause:
        """Why a startable-slot child could not start: token or credit."""
        for edge in self._producers.get(child_idx, ()):
            if it.status[edge.producer] != "done":
                return StallCause.TOKEN_WAIT
        return StallCause.CREDIT_WAIT

    def _mark_wait(self, child: NodeSim, cause: StallCause) -> None:
        """Attribute a control-protocol wait to a child's subtree."""
        marks = self._park_marks
        for name in child.leaf_names:
            self.trace.mark(name, cause)
            if marks is not None:
                marks.append((name, cause))

    def _earlier_pending(self, child_idx: int, k: int) -> bool:
        for other in self._live:
            if other.k < k and other.status[child_idx] != "done":
                return True
        return False

    def _tick_streaming(self) -> None:
        trace = self.trace
        sched = self._sched
        moved = False
        it = self._live[0]
        for idx, child in enumerate(self.children):
            if it.status[idx] == "pending":
                child.start({**it.bindings}, it.version + (idx,))
                it.status[idx] = "running"
                moved = True
                if sched is not None:
                    sched.node_started(child)
                if trace is not None:
                    trace.emit(EventKind.CHILD_START, self.name,
                               (child.name, it.k))
            elif it.status[idx] == "running" and not child.busy:
                it.status[idx] = "done"
                self._completed[idx] += 1
                moved = True
                if trace is not None:
                    trace.emit(EventKind.CHILD_DONE, self.name,
                               (child.name, it.k))
        if all(s == "done" for s in it.status):
            moved = True
            self._live.remove(it)
            self._after_iteration(it)
        if sched is not None:
            if not moved:
                # streaming children all started on the first tick; the
                # only observable transition left is a child completing,
                # which wakes us through the parent map.
                self._park = EMPTY_PARK
            elif self._live and all(
                    s == "done" or (s == "running" and c.busy)
                    for s, c in zip(self._live[0].status,
                                    self.children)):
                # productive tick, but the next one provably repeats:
                # everything still running is busy and nothing is left
                # to start (dense streaming wait ticks emit no marks)
                self._park = EMPTY_PARK

    def _after_iteration(self, it: _IterState) -> None:
        reg = self.ctrl.stop_when_zero
        if reg is not None and self.mem.reg(reg).read() == 0:
            self._stopped = True
