"""Cycle-level simulator of the Plasticine fabric."""

from repro.sim.config import (AgAssignment, FabricConfig, LeafTiming,
                              MemoryPlacement)
from repro.sim.counters import Batch, ChainEnumerator
from repro.sim.datapath import LaneContext
from repro.sim.dram_image import DramImage, assign_bases
from repro.sim.fabric import Fabric, Tenant
from repro.sim.fifo import FifoSim
from repro.sim.leaves import (GatherSim, InnerComputeSim, NodeSim,
                              ScatterSim, StreamStoreSim, TileLoadSim,
                              TileStoreSim)
from repro.sim.machine import Machine
from repro.sim.outer import DepEdge, OuterControllerSim
from repro.sim.scratchpad import MemoryState, RegSim, ScratchpadSim
from repro.sim.stats import SimStats

__all__ = [
    "AgAssignment", "FabricConfig", "LeafTiming", "MemoryPlacement",
    "Batch", "ChainEnumerator",
    "LaneContext",
    "DramImage", "assign_bases",
    "Fabric", "Tenant",
    "FifoSim",
    "GatherSim", "InnerComputeSim", "NodeSim", "ScatterSim",
    "StreamStoreSim", "TileLoadSim", "TileStoreSim",
    "Machine",
    "DepEdge", "OuterControllerSim",
    "MemoryState", "RegSim", "ScratchpadSim",
    "SimStats",
]
